"""Tests for the MLP-limited core model."""

import pytest

from repro.cpu.core import Core
from repro.cpu.trace import TraceEntry, cyclic, take


def entries(n, compute_ps=1000, instructions=10, bank=0, row=0):
    return [TraceEntry(compute_ps=compute_ps, instructions=instructions,
                       subchannel=0, bank=bank, row=row)
            for _ in range(n)]


class TestCore:
    def test_rejects_zero_mlp(self):
        with pytest.raises(ValueError):
            Core(0, iter([]), mlp=0)

    def test_issue_paced_by_compute(self):
        core = Core(0, iter(entries(3, compute_ps=500)), mlp=8)
        t1, _ = core.pop_request()
        core.complete(t1 + 100)
        t2, _ = core.pop_request()
        assert t1 == 500
        assert t2 == 1000

    def test_blocks_on_oldest_when_mlp_full(self):
        core = Core(0, iter(entries(3, compute_ps=10)), mlp=2)
        t1, _ = core.pop_request()
        core.complete(5000)
        t2, _ = core.pop_request()
        core.complete(9000)
        # Third issue must wait for the first completion (t=5000).
        t3, _ = core.pop_request()
        assert t3 == 5000

    def test_trace_exhaustion(self):
        core = Core(0, iter(entries(1)), mlp=2)
        core.pop_request()
        core.complete(100)
        assert core.peek_issue_time() is None
        with pytest.raises(StopIteration):
            core.pop_request()

    def test_instruction_accounting(self):
        core = Core(0, iter(entries(3, instructions=7)), mlp=8)
        for _ in range(3):
            t, _ = core.pop_request()
            core.complete(t + 10)
        assert core.retired_instructions == 21
        assert core.misses_issued == 3

    def test_ipc(self):
        core = Core(0, iter(entries(4, compute_ps=250, instructions=4)),
                    mlp=8)
        for _ in range(4):
            t, _ = core.pop_request()
            core.complete(t + 10)
        # 16 instructions over 4000 ps at 250 ps/cycle = 16 cycles.
        assert core.ipc(4000, 250.0) == pytest.approx(1.0)

    def test_peek_is_idempotent(self):
        core = Core(0, iter(entries(2, compute_ps=100)), mlp=2)
        assert core.peek_issue_time() == core.peek_issue_time() == 100


class TestTraceHelpers:
    def test_cyclic_repeats(self):
        trace = cyclic(entries(2))
        assert len(take(trace, 5)) == 5

    def test_cyclic_rejects_empty(self):
        with pytest.raises(ValueError):
            cyclic([])

    def test_take_short_trace(self):
        assert len(take(iter(entries(2)), 10)) == 2
