"""Tests for the assembled multi-core system."""

import pytest

from repro.cpu.system import MultiCoreSystem, SimResult
from repro.cpu.trace import TraceEntry
from repro.params import ns


def uniform_trace(config, compute_ns=50, rows=64):
    def factory(core_id):
        def gen():
            i = 0
            while True:
                yield TraceEntry(
                    compute_ps=ns(compute_ns), instructions=10,
                    subchannel=i % config.geometry.subchannels,
                    bank=(i * 7 + core_id) %
                    config.geometry.banks_per_subchannel,
                    row=(i * 13) % rows)
                i += 1
        return gen()
    return factory


class TestMultiCoreSystem:
    def test_run_produces_per_core_ipc(self, small_config):
        system = MultiCoreSystem(small_config,
                                 uniform_trace(small_config), mlp=4)
        result = system.run(ns(100_000))
        assert len(result.ipc) == small_config.num_cores
        assert all(ipc > 0 for ipc in result.ipc)

    def test_activations_recorded(self, small_config):
        system = MultiCoreSystem(small_config,
                                 uniform_trace(small_config), mlp=4)
        result = system.run(ns(50_000))
        assert result.total_activations > 0
        assert result.total_requests >= result.total_activations

    def test_deterministic(self, small_config):
        results = []
        for _ in range(2):
            system = MultiCoreSystem(small_config,
                                     uniform_trace(small_config), mlp=4)
            results.append(system.run(ns(50_000)))
        assert results[0].ipc == results[1].ipc
        assert results[0].total_requests == results[1].total_requests

    def test_requests_split_across_subchannels(self, small_config):
        system = MultiCoreSystem(small_config,
                                 uniform_trace(small_config), mlp=4)
        system.run(ns(50_000))
        assert all(mc.total_requests > 0 for mc in system.mcs)

    def test_zero_window_serves_nothing(self, small_config):
        system = MultiCoreSystem(small_config,
                                 uniform_trace(small_config), mlp=4)
        result = system.run(0)
        assert result.total_requests == 0


class TestSimResult:
    def _result(self, config, ipc):
        r = SimResult(window_ps=config.timings.tREFI * 100,
                      config=config)
        r.ipc = ipc
        return r

    def test_weighted_speedup_identity(self, small_config):
        base = self._result(small_config, [1.0, 2.0])
        assert base.weighted_speedup(base) == pytest.approx(2.0)
        assert base.normalized_performance(base) == pytest.approx(1.0)

    def test_slowdown_pct(self, small_config):
        base = self._result(small_config, [1.0, 1.0])
        slow = self._result(small_config, [0.9, 0.9])
        assert slow.slowdown_pct(base) == pytest.approx(10.0)

    def test_alerts_per_100_trefi(self, small_config):
        r = self._result(small_config, [1.0])
        r.alerts = [10, 10]
        # 100 tREFI window, 10 alerts per subchannel -> 10 per 100.
        assert r.alerts_per_100_trefi() == pytest.approx(10.0)

    def test_refresh_power_overhead_pct(self, small_config):
        r = self._result(small_config, [1.0])
        r.victim_rows_refreshed = 5
        r.demand_rows_refreshed = 100
        assert r.refresh_power_overhead_pct() == pytest.approx(5.0)

    def test_acts_per_subarray(self, small_config):
        r = self._result(small_config, [1.0])
        g = small_config.geometry
        r.total_activations = g.total_banks * g.subarrays_per_bank * 3
        assert r.acts_per_subarray() == pytest.approx(3.0)

    def test_zero_baseline_core_ignored(self, small_config):
        base = self._result(small_config, [1.0, 0.0])
        other = self._result(small_config, [0.5, 0.7])
        assert other.normalized_performance(base) == pytest.approx(0.5)
