"""Tests for session-level span tracing: recorder, export, session.

Covers the guarantees docs/observability.md promises for spans: the
bounded recorder and its outward-folding scopes, the Chrome ``X``
export on the reserved span tracks, and the session integration --
every executed cell appears exactly once with its disposition, and
serial vs process-pool batches record identical span populations.
"""

import dataclasses
import json

import pytest

from repro.obs.export import (
    SPAN_PIDS,
    chrome_span_events,
    sanitize_span_records,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import TRACK_WORKER, SpanRecorder, recording
from repro.params import SimScale
from repro.sim.registry import setup_by_name
from repro.sim.session import SimJob, SimSession

SCALE = SimScale(2048)  # ~16 us windows: smoke-test speed


def _jobs():
    setup = setup_by_name("mirza", SCALE)
    return [SimJob(w, setup, SCALE, seed=0) for w in ("tc", "lbm")]


class TestSpanRecorder:
    def test_add_and_as_list(self):
        rec = SpanRecorder()
        rec.add("session", "run_many", 100.0, 50.0, {"cells": 2})
        assert rec.as_list() == [
            ["session", "run_many", 100.0, 50.0, {"cells": 2}]]

    def test_as_list_copies_meta(self):
        rec = SpanRecorder()
        meta = {"k": 1}
        rec.add("session", "a", 0.0, 1.0, meta)
        exported = rec.as_list()
        exported[0][4]["k"] = 99
        assert rec.as_list()[0][4] == {"k": 1}

    def test_cap_keeps_newest_and_counts_drops(self):
        rec = SpanRecorder(limit=2)
        for i in range(4):
            rec.add("session", f"s{i}", float(i), 1.0)
        assert len(rec) == 2
        assert rec.dropped == 2
        assert [s[1] for s in rec.as_list()] == ["s2", "s3"]

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            SpanRecorder(limit=0)

    def test_span_context_manager_attaches_attrs(self):
        rec = SpanRecorder()
        with rec.span("worker", "kernel:event", {"pid": 7}) as attrs:
            attrs["requests"] = 42
        (track, name, start, dur, meta), = rec.as_list()
        assert (track, name) == ("worker", "kernel:event")
        assert start > 0 and dur >= 0
        assert meta == {"pid": 7, "requests": 42}

    def test_span_records_even_when_body_raises(self):
        rec = SpanRecorder()
        with pytest.raises(RuntimeError):
            with rec.span("session", "workers"):
                raise RuntimeError("boom")
        assert [s[1] for s in rec.as_list()] == ["workers"]

    def test_nested_recording_scopes_fold_outward(self):
        with recording() as outer:
            with recording() as inner:
                inner.add("session", "child", 1.0, 2.0)
        assert [s[1] for s in outer.as_list()] == ["child"]

    def test_env_knobs(self, monkeypatch):
        from repro.obs import spans as spans_mod
        monkeypatch.delenv("REPRO_SPANS", raising=False)
        assert not spans_mod.requested()
        monkeypatch.setenv("REPRO_SPANS", "1")
        assert spans_mod.enabled_by_env()
        assert spans_mod.requested()
        monkeypatch.setenv("REPRO_SPAN_LIMIT", "123")
        assert spans_mod.limit_from_env() == 123
        monkeypatch.setenv("REPRO_SPAN_LIMIT", "bogus")
        assert spans_mod.limit_from_env() == spans_mod.DEFAULT_LIMIT


class TestSpanExport:
    SPANS = [
        ["session", "run_many", 1000.0, 500.0, {"submitted": 2}],
        ["session", "cell:tc/mirza-1000", 1100.0, 200.0,
         {"disposition": "computed", "attempts": 1}],
        ["worker", "kernel:event", 1150.0, 120.0, {"pid": 1234}],
    ]

    def test_spans_become_x_events_on_reserved_pids(self):
        records = chrome_span_events(self.SPANS)
        xs = [r for r in records if r["ph"] == "X"]
        assert len(xs) == 3
        by_name = {r["name"]: r for r in xs}
        assert by_name["run_many"]["pid"] == SPAN_PIDS["session"]
        assert by_name["kernel:event"]["pid"] == SPAN_PIDS["worker"]
        assert by_name["kernel:event"]["tid"] == 1234
        assert by_name["cell:tc/mirza-1000"]["args"]["disposition"] == \
            "computed"

    def test_track_metadata_labels_lanes(self):
        records = chrome_span_events(self.SPANS)
        names = {(r["pid"], r["tid"]): r["args"]["name"]
                 for r in records if r["ph"] == "M"
                 and r["name"] == "thread_name"}
        assert names[(SPAN_PIDS["worker"], 1234)] == "pid 1234"

    def test_merged_trace_with_spans_validates(self, tmp_path):
        events = [[100, "I", "ACT", 0, 3],
                  [200, "B", "REF", 0, -1], [260, "E", "REF", 0, -1]]
        target = tmp_path / "trace.json"
        write_chrome_trace(events, str(target), spans=self.SPANS)
        payload = json.loads(target.read_text())
        assert validate_chrome_trace(payload) is None
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert SPAN_PIDS["session"] in pids
        assert SPAN_PIDS["worker"] in pids

    def test_sanitizer_drops_negative_and_sorts(self):
        records = [
            {"name": "b", "ph": "X", "pid": 9000, "tid": 0,
             "ts": 5.0, "dur": 1.0, "args": {}},
            {"name": "bad", "ph": "X", "pid": 9000, "tid": 0,
             "ts": 1.0, "dur": -4.0, "args": {}},
            {"name": "nodur", "ph": "X", "pid": 9000, "tid": 0,
             "ts": 2.0, "args": {}},
            {"name": "a", "ph": "X", "pid": 9000, "tid": 0,
             "ts": 1.0, "dur": 2.0, "args": {}},
        ]
        kept = sanitize_span_records(records)
        assert [r["name"] for r in kept] == ["a", "b"]

    def test_validator_rejects_negative_duration(self):
        bad = [{"name": "x", "ph": "X", "pid": 0, "tid": 0,
                "ts": 1.0, "dur": -1.0}]
        assert "negative duration" in validate_chrome_trace(bad)

    def test_validator_rejects_missing_duration(self):
        bad = [{"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1.0}]
        assert "lacks a numeric dur" in validate_chrome_trace(bad)

    def test_validator_accepts_well_formed_x(self):
        good = [{"name": "x", "ph": "X", "pid": 0, "tid": 0,
                 "ts": 1.0, "dur": 0.0}]
        assert validate_chrome_trace(good) is None


def _cells(rec):
    """(name, disposition) of every cell span in the recorder."""
    return [(s[1], s[4].get("disposition")) for s in rec.as_list()
            if s[1].startswith("cell:")]


class TestSessionSpans:
    def _run(self, workers, session=None):
        if session is None:
            session = SimSession(disk_cache=False, max_workers=workers)
        with recording() as rec:
            results = session.run_many(_jobs(),
                                       max_workers=workers)
        return rec, results

    def test_every_cell_exactly_once_with_disposition(self):
        rec, results = self._run(1)
        assert sorted(_cells(rec)) == [
            ("cell:lbm/mirza-1000", "computed"),
            ("cell:tc/mirza-1000", "computed")]
        names = [s[1] for s in rec.as_list()]
        assert names.count("run_many") == 1
        assert names.count("workers") == 1
        assert names.count("kernel:event") == 2

    def test_serial_and_pool_span_populations_identical(self):
        rec1, res1 = self._run(1)
        rec2, res2 = self._run(2)
        names1 = sorted(s[1] for s in rec1.as_list())
        names2 = sorted(s[1] for s in rec2.as_list())
        assert names1 == names2
        assert sorted(_cells(rec1)) == sorted(_cells(rec2))
        assert [r.spans is not None for r in res1] == \
            [r.spans is not None for r in res2]

    def test_second_batch_is_all_cache_hits(self):
        session = SimSession(disk_cache=False, max_workers=1)
        self._run(1, session=session)
        rec, _ = self._run(1, session=session)
        assert sorted(_cells(rec)) == [
            ("cell:lbm/mirza-1000", "cache-hit"),
            ("cell:tc/mirza-1000", "cache-hit")]
        hits = [s for s in rec.as_list() if s[1].startswith("cell:")]
        assert all(s[4]["attempts"] == 0 for s in hits)

    def test_worker_spans_carry_pid_and_kernel_counts(self):
        rec, results = self._run(2)
        kernels = [s for s in rec.as_list()
                   if s[1] == "kernel:event"]
        assert len(kernels) == 2
        for span in kernels:
            assert span[0] == TRACK_WORKER
            assert span[4]["pid"] > 0
            assert span[4]["requests"] > 0

    def test_retried_disposition(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        session = SimSession(disk_cache=False, max_workers=1,
                             max_retries=1)
        with recording() as rec:
            session.run_many([_jobs()[0]])
        (name, disposition), = _cells(rec)
        assert disposition == "retried"
        cell = [s for s in rec.as_list()
                if s[1].startswith("cell:")][0]
        assert cell[4]["attempts"] == 2

    def test_failed_disposition_under_keep_going(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        session = SimSession(disk_cache=False, max_workers=1,
                             max_retries=0, failure_policy="keep_going")
        with recording() as rec:
            session.run_many([_jobs()[0]])
        (_, disposition), = _cells(rec)
        assert disposition == "failed"

    def test_untokened_cell_is_spanned(self):
        from repro.sim.runner import prac_setup
        setup = prac_setup(1000)
        factory = setup.tracker_factory
        opaque = dataclasses.replace(
            setup,
            tracker_factory=lambda seed, subch, bank: factory(
                seed, subch, bank))
        job = SimJob("tc", opaque, SCALE)
        session = SimSession(disk_cache=False, max_workers=1)
        with recording() as rec:
            session.run_many([job])
        cells = _cells(rec)
        assert len(cells) == 1
        assert cells[0][1] == "computed"

    def test_results_carry_spans_when_requested(self):
        _, results = self._run(1)
        for result in results:
            assert any(s[1] == "kernel:event" for s in result.spans)

    def test_no_spans_when_not_requested(self, monkeypatch):
        monkeypatch.delenv("REPRO_SPANS", raising=False)
        session = SimSession(disk_cache=False, max_workers=1)
        result = session.run_many([_jobs()[0]])[0]
        assert result.spans is None

    def test_batch_gauges_in_session_registry(self):
        session = SimSession(disk_cache=False, max_workers=1)
        session.run_many(_jobs())
        session.run_many(_jobs())  # second batch: all cache hits
        snap = session.obs_snapshot()
        assert snap["session.jobs_submitted"]["value"] == 4
        assert snap["session.cache_hits"]["value"] == 2
        assert snap["session.cache.hit_rate"]["value"] == 100.0
        assert snap["session.queue_depth"]["count"] == 4
        assert snap["session.pool.workers"]["value"] == 1

    def test_batch_stats_utilization_and_hit_rate(self):
        session = SimSession(disk_cache=False, max_workers=1)
        session.run_many(_jobs())
        batch = session.last_batch
        assert batch.workers == 1
        assert batch.wall_seconds > 0
        assert 0.0 < batch.utilization <= 1.0
        assert batch.hit_rate == 0.0


class TestProgressLine:
    def test_update_properties(self):
        from repro.obs.progress import ProgressUpdate
        up = ProgressUpdate(done=2, total=8, cache_hits=1, retried=0,
                            failed=0, elapsed_s=4.0)
        assert up.hit_rate == 0.5
        assert up.eta_s == pytest.approx(12.0)
        none_yet = ProgressUpdate(done=0, total=8, cache_hits=0,
                                  retried=0, failed=0, elapsed_s=0.0)
        assert none_yet.eta_s is None
        finished = ProgressUpdate(done=8, total=8, cache_hits=0,
                                  retried=0, failed=0, elapsed_s=1.0)
        assert finished.eta_s == 0.0

    def test_interactive_redraws_one_line(self):
        import io
        from repro.obs.progress import ProgressLine, ProgressUpdate
        sink = io.StringIO()
        line = ProgressLine(stream=sink, interactive=True,
                            min_interval_s=0.0)
        line(ProgressUpdate(1, 2, 0, 0, 0, 0.5))
        line(ProgressUpdate(2, 2, 1, 0, 0, 1.0))
        line.close()
        text = sink.getvalue()
        assert text.count("\r\x1b[K") == 2
        assert text.endswith("\n")
        assert "[2/2] 100%" in text

    def test_non_tty_throttles_but_renders_final(self):
        import io
        from repro.obs.progress import ProgressLine, ProgressUpdate
        sink = io.StringIO()
        line = ProgressLine(stream=sink, interactive=False)
        for done in range(1, 5):
            line(ProgressUpdate(done, 4, 0, 0, 0, done * 0.01))
        line.close()
        lines = [l for l in sink.getvalue().splitlines() if l]
        # Interval throttling swallows the middle updates; the final
        # one always lands.
        assert lines[-1].startswith("[4/4] 100%")
        assert len(lines) <= 2

    def test_session_invokes_progress_per_cell(self):
        from repro.obs.progress import ProgressUpdate
        seen = []
        session = SimSession(disk_cache=False, max_workers=1,
                             progress=seen.append)
        session.run_many(_jobs())
        assert len(seen) == 2
        assert all(isinstance(u, ProgressUpdate) for u in seen)
        assert seen[-1].done == seen[-1].total == 2
