"""Tests for the metrics registry: kinds, keys, snapshots, merging."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting,
    install,
    merge_snapshots,
    metric_key,
    split_key,
)


class TestMetricKinds:
    def test_counter_merges_by_addition(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(4)
        a.merge_dict(b.to_dict())
        assert a.value == 7

    def test_gauge_tracks_high_watermark(self):
        g = Gauge()
        g.set(5)
        g.set(2)
        assert g.value == 2
        assert g.max == 5

    def test_gauge_merge_is_order_independent(self):
        a, b = Gauge(), Gauge()
        a.set(3)
        b.set(7)
        b.set(1)
        forward, backward = Gauge(), Gauge()
        forward.merge_dict(a.to_dict())
        forward.merge_dict(b.to_dict())
        backward.merge_dict(b.to_dict())
        backward.merge_dict(a.to_dict())
        assert forward.to_dict() == backward.to_dict()
        assert forward.max == 7

    def test_histogram_buckets_have_inclusive_upper_edges(self):
        h = Histogram((10, 20))
        for v in (5, 10, 11, 20, 21):
            h.observe(v)
        assert h.counts == [2, 2, 1]  # <=10, <=20, overflow
        assert h.count == 5
        assert h.sum == 67

    def test_histogram_merge_requires_equal_bounds(self):
        h = Histogram((1, 2))
        with pytest.raises(ValueError):
            h.merge_dict(Histogram((1, 3)).to_dict())

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram((3, 1))

    def test_histogram_quantile_reports_covering_bucket(self):
        h = Histogram((10, 20, 30))
        for v in (1, 1, 1, 25):
            h.observe(v)
        assert h.quantile(0.5) == 10
        assert h.quantile(1.0) == 30
        assert Histogram((1,)).quantile(0.5) == 0.0


class TestMetricKeys:
    def test_unlabeled_key_is_the_name(self):
        assert metric_key("mc.requests") == "mc.requests"

    def test_labeled_round_trip(self):
        key = metric_key("dram.bank.acts", subch=1, bank=17)
        assert key == "dram.bank.acts{subch=1,bank=17}"
        assert split_key(key) == ("dram.bank.acts",
                                  {"subch": 1, "bank": 17})

    def test_split_unlabeled(self):
        assert split_key("abo.alerts") == ("abo.alerts", {})


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a") is not reg.counter("b")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x", (1, 2))

    def test_snapshot_is_sorted_and_json_able(self):
        import json
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2)
        reg.histogram("h", (1, 2)).observe(1)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise

    def test_merge_snapshot_creates_and_accumulates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(1)
        b.counter("n").inc(2)
        b.gauge("g").set(9)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["n"]["value"] == 3
        assert snap["g"]["max"] == 9

    def test_merge_snapshots_skips_none(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(5)
        merged = merge_snapshots([None, reg.snapshot(), None,
                                  reg.snapshot()])
        assert merged["n"]["value"] == 10

    def test_merge_is_order_independent(self):
        snaps = []
        for value in (1, 10, 100):
            reg = MetricsRegistry()
            reg.counter("c").inc(value)
            reg.gauge("g").set(value)
            reg.histogram("h", (50,)).observe(value)
            snaps.append(reg.snapshot())
        assert merge_snapshots(snaps) == merge_snapshots(snaps[::-1])


class TestCollectingScope:
    def test_nested_scopes_merge_outward(self):
        with collecting() as outer:
            with collecting() as inner:
                inner.counter("n").inc(2)
            outer.counter("n").inc(1)
        assert outer.snapshot()["n"]["value"] == 3

    def test_install_restored_after_scope(self):
        from repro.obs import metrics as mod
        sentinel = MetricsRegistry()
        previous = install(sentinel)
        try:
            with collecting():
                assert mod._ACTIVE is not sentinel
            assert mod._ACTIVE is sentinel
        finally:
            install(previous)

    def test_env_knob(self, monkeypatch):
        from repro.obs import metrics as mod
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert not mod.enabled_by_env()
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert mod.enabled_by_env()
        assert mod.requested()
        monkeypatch.setenv("REPRO_METRICS", "0")
        assert not mod.enabled_by_env()


class TestSuppressed:
    def test_suppressed_hides_installed_sinks(self):
        from repro import obs
        from repro.obs import metrics as mmod
        from repro.obs import trace as tmod
        with obs.collecting(metrics=True, trace=True):
            assert mmod._ACTIVE is not None
            with obs.suppressed():
                assert mmod._ACTIVE is None
                assert tmod._ACTIVE is None
            assert mmod._ACTIVE is not None
            assert tmod._ACTIVE is not None
