"""Tests for the event ring buffer and the JSONL/Chrome exporters."""

import io
import json

import pytest

from repro.obs.export import (
    CHANNEL_TID,
    chrome_trace_events,
    read_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.trace import CHANNEL_LANE, TraceBuffer, tracing


class TestTraceBuffer:
    def test_emit_and_as_list(self):
        buf = TraceBuffer()
        buf.instant(100, "ACT", 0, 3)
        buf.window(200, 250, "REF", 1)
        assert buf.as_list() == [
            [100, "I", "ACT", 0, 3],
            [200, "B", "REF", 1, CHANNEL_LANE],
            [250, "E", "REF", 1, CHANNEL_LANE],
        ]

    def test_ring_keeps_newest_and_counts_drops(self):
        buf = TraceBuffer(limit=3)
        for ts in range(5):
            buf.instant(ts, "ACT")
        assert len(buf) == 3
        assert buf.dropped == 2
        assert [e[0] for e in buf.as_list()] == [2, 3, 4]

    def test_extend_folds_lists(self):
        a, b = TraceBuffer(), TraceBuffer()
        a.instant(1, "ACT")
        b.instant(2, "ALERT")
        a.extend(b.as_list())
        assert [e[2] for e in a.as_list()] == ["ACT", "ALERT"]

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            TraceBuffer(limit=0)

    def test_nested_tracing_scopes_merge_outward(self):
        with tracing() as outer:
            with tracing() as inner:
                inner.instant(5, "ACT")
        assert outer.as_list() == [[5, "I", "ACT", 0, CHANNEL_LANE]]


class TestJsonlRoundTrip:
    def test_round_trip_preserves_events(self):
        events = [[100, "I", "ACT", 0, 3],
                  [200, "B", "STALL", 1, CHANNEL_LANE],
                  [260, "E", "STALL", 1, CHANNEL_LANE]]
        sink = io.StringIO()
        assert write_jsonl(events, sink) == 3
        assert read_jsonl(io.StringIO(sink.getvalue())) == events

    def test_file_round_trip(self, tmp_path):
        events = [[1, "I", "ALERT", 0, CHANNEL_LANE]]
        path = str(tmp_path / "events.jsonl")
        write_jsonl(events, path)
        assert read_jsonl(path) == events

    def test_lines_are_json_objects(self):
        sink = io.StringIO()
        write_jsonl([[7, "I", "ACT", 1, 2]], sink)
        record = json.loads(sink.getvalue())
        assert record == {"ts": 7, "ph": "I", "name": "ACT",
                          "subch": 1, "bank": 2}


class TestChromeExport:
    def test_jsonl_to_chrome_round_trip_validates(self):
        events = [[300, "B", "REF", 0, CHANNEL_LANE],
                  [100, "I", "ACT", 0, 4],
                  [350, "E", "REF", 0, CHANNEL_LANE],
                  [120, "I", "ACT", 1, 9]]
        sink = io.StringIO()
        write_jsonl(events, sink)
        reloaded = read_jsonl(io.StringIO(sink.getvalue()))
        out = io.StringIO()
        write_chrome_trace(reloaded, out)
        payload = json.loads(out.getvalue())
        assert validate_chrome_trace(payload) is None
        assert payload["traceEvents"]

    def test_timestamps_sorted_and_scaled_to_us(self):
        records = chrome_trace_events([[2_000_000, "I", "ACT", 0, 1],
                                       [1_000_000, "I", "ACT", 0, 1]])
        timed = [r for r in records if r["ph"] != "M"]
        assert [r["ts"] for r in timed] == [1.0, 2.0]

    def test_lane_metadata_per_bank_and_channel(self):
        records = chrome_trace_events(
            [[1, "I", "ACT", 0, 5],
             [2, "I", "ALERT", 0, CHANNEL_LANE]])
        meta = {(r["pid"], r["tid"]): r["args"]["name"]
                for r in records if r["ph"] == "M"
                and r["name"] == "thread_name"}
        assert meta[(0, 5)] == "bank 5"
        assert meta[(0, CHANNEL_TID)] == "channel"

    def test_orphan_end_is_dropped(self):
        records = chrome_trace_events([[50, "E", "REF", 0,
                                        CHANNEL_LANE]])
        assert all(r["ph"] == "M" for r in records)

    def test_unclosed_begin_is_closed_at_trace_end(self):
        records = chrome_trace_events(
            [[10, "B", "STALL", 0, CHANNEL_LANE],
             [99, "I", "ACT", 0, 1]])
        assert validate_chrome_trace(records) is None
        ends = [r for r in records if r["ph"] == "E"]
        assert len(ends) == 1
        assert ends[0]["ts"] == pytest.approx(99 / 1_000_000)

    def test_paired_b_e_survive_export(self):
        records = chrome_trace_events(
            [[10, "B", "RFM", 0, 2], [60, "E", "RFM", 0, 2]])
        phases = [r["ph"] for r in records if r["ph"] in "BE"]
        assert phases == ["B", "E"]


class TestValidator:
    def test_rejects_backwards_time(self):
        bad = [{"name": "a", "ph": "i", "pid": 0, "tid": 0, "ts": 5,
                "s": "t"},
               {"name": "a", "ph": "i", "pid": 0, "tid": 0, "ts": 4,
                "s": "t"}]
        assert "back in time" in validate_chrome_trace(bad)

    def test_rejects_unbalanced_windows(self):
        bad = [{"name": "w", "ph": "B", "pid": 0, "tid": 0, "ts": 1}]
        assert "unclosed" in validate_chrome_trace(bad)

    def test_rejects_end_without_begin(self):
        bad = [{"name": "w", "ph": "E", "pid": 0, "tid": 0, "ts": 1}]
        assert "without matching B" in validate_chrome_trace(bad)

    def test_rejects_missing_fields(self):
        assert validate_chrome_trace([{"ph": "i", "ts": 1}]) is not None

    def test_accepts_payload_dict_or_list(self):
        assert validate_chrome_trace({"traceEvents": []}) is None
        assert validate_chrome_trace([]) is None
        assert validate_chrome_trace({"nope": 1}) is not None
