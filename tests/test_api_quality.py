"""API quality gates: importability, docstrings, determinism."""

import importlib
import inspect
import pkgutil


import repro

PACKAGES = [
    "repro", "repro.core", "repro.dram", "repro.mc", "repro.cpu",
    "repro.cache", "repro.mitigations", "repro.security",
    "repro.workloads", "repro.sim", "repro.experiments",
]


def walk_modules():
    seen = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        seen.append(package)
        for info in pkgutil.iter_modules(package.__path__ if hasattr(
                package, "__path__") else []):
            seen.append(importlib.import_module(
                f"{package_name}.{info.name}"))
    return seen


class TestImportability:
    def test_every_module_imports(self):
        modules = walk_modules()
        assert len(modules) > 40

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_all_resolves(self):
        for package_name in PACKAGES[1:]:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                assert getattr(package, name) is not None, \
                    f"{package_name}.{name}"


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        for module in walk_modules():
            assert module.__doc__, module.__name__

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for module in walk_modules():
            if not module.__name__.startswith("repro"):
                continue
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(
                            f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_methods_documented(self):
        undocumented = []
        for module in walk_modules():
            for name, obj in vars(module).items():
                if not inspect.isclass(obj) or name.startswith("_"):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                for attr, member in vars(obj).items():
                    if attr.startswith("_"):
                        continue
                    if inspect.isfunction(member) and \
                            not inspect.getdoc(member):
                        undocumented.append(
                            f"{module.__name__}.{name}.{attr}")
        assert undocumented == []


class TestCuratedSurface:
    def test_backend_api_exported_at_top_level(self):
        for name in ("simulate", "SimSession", "KernelBackend",
                     "available_backends", "WorkloadSource",
                     "workload_by_name", "ALL_WORKLOADS"):
            assert name in repro.__all__, name
            assert getattr(repro, name) is not None

    def test_sim_surface_exports_backends(self):
        sim = importlib.import_module("repro.sim")
        for name in ("KernelBackend", "EventBackend", "ArrayBackend",
                     "available_backends", "register_backend",
                     "resolve_backend", "simulate", "SimSession"):
            assert name in sim.__all__, name

    def test_workload_sources_satisfy_the_seam(self):
        from repro.params import SimScale, SystemConfig
        from repro.workloads import (
            SyntheticWorkload,
            TraceFileWorkload,
            WorkloadSource,
            workload_by_name,
        )
        synthetic = SyntheticWorkload(workload_by_name("tc"),
                                      SystemConfig(), SimScale(2048))
        assert isinstance(synthetic, WorkloadSource)
        assert isinstance(TraceFileWorkload([]), WorkloadSource)

    def test_deprecated_stats_shim_warns_once(self):
        import warnings

        import repro.sim as sim
        from repro.sim import stats

        sim._warned_stats.discard("geometric_mean")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = sim.geometric_mean
            second = sim.geometric_mean
        assert first is stats.geometric_mean
        assert second is stats.geometric_mean
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "repro.sim.stats" in str(deprecations[0].message)

    def test_deprecated_names_not_in_curated_all(self):
        sim = importlib.import_module("repro.sim")
        for name in ("format_table", "geometric_mean", "mean"):
            assert name not in sim.__all__


class TestDeterminism:
    def test_mirza_tracker_runs_are_bit_identical(self):
        import random

        from repro.core.config import MirzaConfig
        from repro.core.mirza import MirzaTracker
        from repro.dram.mapping import StridedR2SA
        from repro.params import DramGeometry

        def run():
            geometry = DramGeometry()
            tracker = MirzaTracker(MirzaConfig.paper_config(1000),
                                   geometry, StridedR2SA(geometry),
                                   random.Random(99))
            for i in range(5000):
                tracker.on_activate((i * 769) % 4096, i)
            return (tracker.rct.escaped_acts, tracker.mint.selected,
                    sorted(tracker.queue._entries.items()))
        assert run() == run()
