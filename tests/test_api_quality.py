"""API quality gates: importability, docstrings, determinism."""

import importlib
import inspect
import pkgutil


import repro

PACKAGES = [
    "repro", "repro.core", "repro.dram", "repro.mc", "repro.cpu",
    "repro.cache", "repro.mitigations", "repro.security",
    "repro.workloads", "repro.sim", "repro.experiments",
]


def walk_modules():
    seen = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        seen.append(package)
        for info in pkgutil.iter_modules(package.__path__ if hasattr(
                package, "__path__") else []):
            seen.append(importlib.import_module(
                f"{package_name}.{info.name}"))
    return seen


class TestImportability:
    def test_every_module_imports(self):
        modules = walk_modules()
        assert len(modules) > 40

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_all_resolves(self):
        for package_name in PACKAGES[1:]:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                assert getattr(package, name) is not None, \
                    f"{package_name}.{name}"


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        for module in walk_modules():
            assert module.__doc__, module.__name__

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for module in walk_modules():
            if not module.__name__.startswith("repro"):
                continue
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(
                            f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_methods_documented(self):
        undocumented = []
        for module in walk_modules():
            for name, obj in vars(module).items():
                if not inspect.isclass(obj) or name.startswith("_"):
                    continue
                if obj.__module__ != module.__name__:
                    continue
                for attr, member in vars(obj).items():
                    if attr.startswith("_"):
                        continue
                    if inspect.isfunction(member) and \
                            not inspect.getdoc(member):
                        undocumented.append(
                            f"{module.__name__}.{name}.{attr}")
        assert undocumented == []


class TestDeterminism:
    def test_mirza_tracker_runs_are_bit_identical(self):
        import random

        from repro.core.config import MirzaConfig
        from repro.core.mirza import MirzaTracker
        from repro.dram.mapping import StridedR2SA
        from repro.params import DramGeometry

        def run():
            geometry = DramGeometry()
            tracker = MirzaTracker(MirzaConfig.paper_config(1000),
                                   geometry, StridedR2SA(geometry),
                                   random.Random(99))
            for i in range(5000):
                tracker.on_activate((i * 769) % 4096, i)
            return (tracker.rct.escaped_acts, tracker.mint.selected,
                    sorted(tracker.queue._entries.items()))
        assert run() == run()
