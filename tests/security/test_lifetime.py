"""Tests for the fleet-lifetime failure analysis."""

import pytest

from repro.security.lifetime import (
    attack_success_probability,
    lifetime_report,
    mean_time_to_failure_years,
    required_exponent,
    windows_per_year,
)
from repro.security.mint_model import MINT_FAILURE_EXPONENT


class TestWindowsPerYear:
    def test_about_a_billion(self):
        # 32 ms windows: ~986 million per year.
        assert windows_per_year() == pytest.approx(9.86e8, rel=0.01)


class TestAttackSuccessProbability:
    def test_probability_increases_with_everything(self):
        base = attack_success_probability(40, years=1, banks=64)
        assert attack_success_probability(40, years=10, banks=64) > base
        assert attack_success_probability(
            40, years=1, banks=64, machines=10) > base
        assert attack_success_probability(30, years=1, banks=64) > base

    def test_clamps_at_one(self):
        assert attack_success_probability(5, years=10, banks=64) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            attack_success_probability(0)
        with pytest.raises(ValueError):
            attack_success_probability(40, years=-1)

    def test_calibrated_exponent_is_marginal_per_machine(self):
        """k = 28.5 keeps a single machine safe-ish for a year but is
        clearly a per-window budget, not a fleet guarantee -- which is
        why the paper treats the MINT model's threshold as the knob."""
        p = attack_success_probability(MINT_FAILURE_EXPONENT, years=1,
                                       banks=64)
        assert 0.0 < p  # nonzero by construction


class TestMttf:
    def test_mttf_doubles_per_exponent_bit(self):
        a = mean_time_to_failure_years(40, banks=64)
        b = mean_time_to_failure_years(41, banks=64)
        assert b / a == pytest.approx(2.0)

    def test_degenerate_exponent(self):
        assert mean_time_to_failure_years(2, banks=64) == 0.0


class TestRequiredExponent:
    def test_round_trip(self):
        k = required_exponent(1e-6, years=10, banks=64, machines=1000)
        p = attack_success_probability(k, years=10, banks=64,
                                       machines=1000)
        assert p == pytest.approx(1e-6, rel=0.01)

    def test_fleet_needs_more_bits_than_machine(self):
        machine = required_exponent(1e-6, years=10, banks=64)
        fleet = required_exponent(1e-6, years=10, banks=64,
                                  machines=1000)
        assert fleet == pytest.approx(machine + 9.97, abs=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_exponent(0.0, years=1)


class TestLifetimeReport:
    def test_fields_consistent(self):
        report = lifetime_report(45.0)
        assert report.fail_exponent == 45.0
        assert report.single_machine_mttf_years > 0
        assert 0 <= report.single_machine_failure_10y <= \
            report.fleet_1k_failure_10y <= 1.0
