"""Tests for the MINT analytic security model."""

import pytest

from repro.security.mint_model import (
    MINT_FAILURE_EXPONENT,
    mint_tolerated_trhd,
    mint_tolerated_trhs,
    mint_unmitigated_bound,
    mint_window_for_trhd,
)


class TestMintToleratedTrh:
    def test_anchor_window_75_is_1500(self):
        # Section II-E: MINT tolerates TRHD 1.5K with a window of 75.
        assert mint_tolerated_trhd(75) == pytest.approx(1500, rel=0.03)

    @pytest.mark.parametrize("window,implied", [
        # Implied by Table VII: FTH = 2*(TRHD - MINT_TRHD - QTH - 7).
        (16, 2000 - 3330 // 2 - 16 - 7),
        (12, 1000 - 1500 // 2 - 16 - 7),
        (8, 500 - 660 // 2 - 16 - 7),
    ])
    def test_matches_paper_table7_implied_values(self, window, implied):
        assert mint_tolerated_trhd(window) == pytest.approx(
            implied, rel=0.05)

    def test_monotone_in_window(self):
        values = [mint_tolerated_trhd(w) for w in (4, 8, 16, 32, 64)]
        assert values == sorted(values)
        assert values[0] > 0

    def test_roughly_linear_in_window(self):
        # N(W) ~ 0.693 k (W - 0.5): doubling W ~doubles the threshold.
        ratio = mint_tolerated_trhd(128) / mint_tolerated_trhd(64)
        assert 1.9 < ratio < 2.1

    def test_single_sided_is_twice_double_sided(self):
        assert mint_tolerated_trhs(12) == 2 * mint_tolerated_trhd(12)

    def test_window_one_tolerates_almost_nothing(self):
        assert mint_tolerated_trhd(1) == 1


class TestUnmitigatedBound:
    def test_slow_hammer_is_optimal(self):
        # d = 1 maximises the unmitigated count.
        for d in (2, 4, 8):
            assert mint_unmitigated_bound(16, acts_per_window=1) > \
                mint_unmitigated_bound(16, acts_per_window=d)

    def test_validation(self):
        with pytest.raises(ValueError):
            mint_unmitigated_bound(0)
        with pytest.raises(ValueError):
            mint_unmitigated_bound(8, acts_per_window=9)
        with pytest.raises(ValueError):
            mint_unmitigated_bound(8, acts_per_window=0)

    def test_higher_exponent_is_stricter_for_attacker(self):
        assert mint_unmitigated_bound(16, fail_exponent=40) > \
            mint_unmitigated_bound(16, fail_exponent=20)


class TestWindowForTrhd:
    def test_inverse_of_tolerated(self):
        for trhd in (200, 500, 1000, 2000, 4800):
            w = mint_window_for_trhd(trhd)
            assert mint_tolerated_trhd(w) <= trhd
            assert mint_tolerated_trhd(w + 1) > trhd

    def test_threshold_too_low(self):
        with pytest.raises(ValueError):
            mint_window_for_trhd(0)

    def test_default_exponent_calibration(self):
        # The calibrated exponent stays near the published model.
        assert 27 < MINT_FAILURE_EXPONENT < 30


class TestMonteCarloAgreement:
    def test_escape_probability_matches_model(self):
        """Empirical check: hammering d=1 per window for m windows
        escapes with probability (1 - 1/W)^m."""
        import random

        from repro.core.mint import MintSampler

        W, m, trials = 8, 16, 2000
        escapes = 0
        rng = random.Random(123)
        for t in range(trials):
            sampler = MintSampler(W, random.Random(rng.random()))
            escaped = True
            for _ in range(m):
                for pos in range(W):
                    row = 1 if pos == 0 else 100 + pos
                    if sampler.observe(row) == 1:
                        escaped = False
            if escaped:
                escapes += 1
        expected = (1 - 1 / W) ** m
        assert escapes / trials == pytest.approx(expected, abs=0.04)
