"""Tests for the seeded attack-parameter fuzzer."""

import random

import pytest

from repro.mitigations.base import BankTracker
from repro.params import SimScale, SystemConfig
from repro.security.fuzz import (
    FAMILIES,
    MITIGATIONS,
    FuzzJob,
    FuzzOutcome,
    FuzzSpec,
    default_acts,
    escape_curve,
    fuzz_jobs,
    fuzz_patterns,
    fuzz_tracker,
    run_fuzz,
    sample_pattern,
)
from repro.sim.session import SimSession, job_token
from repro.workloads.patterns import DoubleSided, Feint

SEQ = dict(mapping="sequential")


def small_spec(**overrides):
    base = dict(mitigations=("trr",), budget=4, acts=4000, seed=0)
    base.update(overrides)
    return FuzzSpec(**base)


class TestTrackerRegistry:
    def test_resolves_every_base_name(self):
        from repro.dram.mapping import SequentialR2SA
        config = SystemConfig()
        mapping = SequentialR2SA(config.geometry)
        for name in MITIGATIONS:
            tracker = fuzz_tracker(name, seed=1, config=config,
                                   mapping=mapping)
            assert isinstance(tracker, BankTracker)

    def test_parameterised_names(self):
        from repro.dram.mapping import SequentialR2SA
        config = SystemConfig()
        mapping = SequentialR2SA(config.geometry)
        trr = fuzz_tracker("trr-8", 0, config, mapping)
        assert trr.entries == 8
        prac = fuzz_tracker("prac-500", 0, config, mapping)
        assert prac.trhd == 500

    def test_unknown_name_raises(self):
        from repro.dram.mapping import SequentialR2SA
        config = SystemConfig()
        with pytest.raises(KeyError):
            fuzz_tracker("nosuch", 0, config,
                         SequentialR2SA(config.geometry))


class TestSampling:
    def test_every_family_is_sampled(self):
        spec = small_spec(budget=len(FAMILIES))
        families = {type(p).__name__ for p in fuzz_patterns(spec)}
        assert len(families) == len(FAMILIES)

    def test_sampling_is_seed_deterministic(self):
        assert fuzz_patterns(small_spec()) == fuzz_patterns(small_spec())
        assert fuzz_patterns(small_spec()) != \
            fuzz_patterns(small_spec(seed=1))

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            sample_pattern(random.Random(0), "nosuch", 100,
                           SystemConfig())

    def test_jobs_are_content_addressed(self):
        cells = fuzz_jobs(small_spec())
        tokens = [job_token(job) for _, job in cells]
        assert all(tokens)
        assert len(set(tokens)) == len(tokens)
        again = [job_token(job) for _, job in fuzz_jobs(small_spec())]
        assert tokens == again


class TestFuzzJob:
    def test_executes_and_reduces(self):
        job = FuzzJob(pattern=Feint(tracker_entries=8, acts=2000,
                                    decoys=1),
                      mitigation="trr-8")
        outcome = job.execute()
        assert isinstance(outcome, FuzzOutcome)
        assert outcome.acts == 2000
        assert outcome.max_unmitigated > 0
        assert outcome.mitigation == "trr-8"

    def test_edge_victim_cell_survives(self):
        # The double-sided edge-case bugfix, end to end: a fuzzer
        # victim at row 0 degrades to single-sided instead of crashing.
        job = FuzzJob(pattern=DoubleSided(victim_row=0, acts=1000),
                      mitigation="none")
        outcome = job.execute()
        # All 1000 ACTs hammer row 1 single-sided; the early refresh
        # sweep resets a handful before it moves past the edge rows.
        assert 900 < outcome.max_unmitigated <= 1000

    def test_outcome_roundtrips_through_disk_cache(self, tmp_path):
        job = FuzzJob(pattern=Feint(tracker_entries=8, acts=1500,
                                    decoys=2),
                      mitigation="trr-8")
        first = SimSession(cache_dir=tmp_path).run_many([job])[0]
        second_session = SimSession(cache_dir=tmp_path)
        second = second_session.run_many([job])[0]
        assert second == first
        assert second_session.last_batch.cache_hits == 1


class TestSweep:
    def test_same_spec_renders_bit_identically(self):
        spec = small_spec()
        one = run_fuzz(spec, session=SimSession(disk_cache=False))
        two = run_fuzz(spec, session=SimSession(disk_cache=False))
        assert one.render() == two.render()

    def test_rerun_is_all_cache_hits(self, tmp_path):
        spec = small_spec()
        session = SimSession(cache_dir=tmp_path)
        run_fuzz(spec, session=session)
        report = run_fuzz(spec, session=session)
        batch = session.last_batch
        assert batch.cache_hits == batch.submitted
        assert report.entries

    def test_fuzzed_pattern_dominates_paper_set_against_trr(self):
        # The acceptance bar: the open-ended search must find a
        # pattern that beats every fixed paper pattern's max per-row
        # escape count against the insecure TRR reference.
        spec = FuzzSpec(mitigations=("trr",), budget=8, acts=12_000,
                        seed=0)
        report = run_fuzz(spec, session=SimSession(disk_cache=False))
        best_fuzz = report.best("trr", "fuzz").outcome
        best_paper = report.best("trr", "paper").outcome
        assert best_fuzz.max_unmitigated > best_paper.max_unmitigated
        assert report.dominated("trr")

    def test_report_ranks_worst_first(self):
        report = run_fuzz(small_spec(),
                          session=SimSession(disk_cache=False))
        escapes = [e.outcome.max_unmitigated
                   for e in report.ranked("trr")]
        assert escapes == sorted(escapes, reverse=True)


class TestEscapeCurve:
    def test_curve_orders_match_inputs(self):
        patterns = [Feint(tracker_entries=8, acts=4000, decoys=d)
                    for d in (1, 4, 16)]
        curve = escape_curve(patterns, "trr-8",
                             session=SimSession(disk_cache=False))
        assert [p for p, _ in curve] == patterns
        assert all(isinstance(v, int) and v > 0 for _, v in curve)
        # Fewer decoys -> tighter rotation -> more escapes per row.
        assert curve[0][1] > curve[2][1]


class TestDefaultActs:
    def test_scales_with_time_and_floors(self):
        assert default_acts(1) > 600_000
        assert default_acts(2048) == 12_000


# ----------------------------------------------------------------------
# Backend bit-identity on one fuzzed cell (full-system compilation)
# ----------------------------------------------------------------------
def _fuzzed_cell_pattern():
    rng = random.Random(11)
    return sample_pattern(rng, "evasion", acts=3000,
                          config=SystemConfig())


def _observed(result):
    return {
        "total_requests": result.total_requests,
        "total_activations": result.total_activations,
        "row_hit_rate": round(result.row_hit_rate, 9),
        "alerts": result.alerts,
        "mitigations": result.mitigations,
        "victim_rows_refreshed": result.victim_rows_refreshed,
    }


def _fast_backends():
    from repro.sim.backend import vector_available
    return ["array", pytest.param(
        "vector", marks=pytest.mark.skipif(
            not vector_available(),
            reason="vector backend needs numpy"))]


@pytest.mark.parametrize("backend", _fast_backends())
def test_fuzzed_cell_is_bit_identical_across_backends(backend):
    from repro.sim.runner import baseline_setup, simulate_source
    from repro.workloads.patterns import CompileContext

    pattern = _fuzzed_cell_pattern()
    scale = SimScale(4096)

    def run(backend_name):
        ctx = CompileContext.make()
        source = pattern.workload(ctx, cores=(0,), mlp=1)
        return simulate_source(source, baseline_setup(), scale,
                               seed=3, backend=backend_name)

    assert _observed(run(backend)) == _observed(run("event"))
