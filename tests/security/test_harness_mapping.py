"""Regression tests: the harness must share the tracker's mapping.

A mapping-aware tracker (MIRZA with strided R2SA) resets its RCT with
the *physical* refresh sweep; the oracle resets when the *logical* row
is refreshed.  If the harness's bank uses a different row-to-subarray
mapping than the tracker, the two reset schedules drift apart and the
measured "unmitigated" counts are meaningless (they once showed a
phantom 2x-FTH break).  The harness now adopts the tracker's mapping
automatically.
"""

import random

from repro.core.config import MirzaConfig
from repro.core.mirza import MirzaTracker
from repro.dram.mapping import SequentialR2SA, StridedR2SA
from repro.mitigations.trr import TrrTracker
from repro.params import SystemConfig
from repro.security.attacks import SingleBankHarness


def strided_mirza(system, seed=1):
    mapping = StridedR2SA(system.geometry)
    return MirzaTracker(MirzaConfig.paper_config(1000),
                        system.geometry, mapping, random.Random(seed))


class TestHarnessMappingAdoption:
    def test_harness_adopts_tracker_mapping(self):
        system = SystemConfig()
        tracker = strided_mirza(system)
        harness = SingleBankHarness(tracker, system)
        assert harness.bank.mapping is tracker.mapping

    def test_explicit_mapping_still_wins(self):
        system = SystemConfig()
        tracker = strided_mirza(system)
        explicit = SequentialR2SA(system.geometry)
        harness = SingleBankHarness(tracker, system, mapping=explicit)
        assert harness.bank.mapping is explicit

    def test_mapping_free_tracker_defaults_to_sequential(self):
        system = SystemConfig()
        harness = SingleBankHarness(TrrTracker(), system)
        assert isinstance(harness.bank.mapping, SequentialR2SA)

    def test_aligned_resets_keep_single_sided_bound(self):
        """With aligned mappings, a strided-MIRZA feinting run stays
        inside the single-sided phase budget (FTH + MINT + QTH + ABO);
        the historical mismatch bug showed ~2x FTH here."""
        from repro.security.mint_model import mint_tolerated_trhs
        from repro.security.mirza_model import abo_extra_acts
        from repro.workloads.attacks import feinting_attack_stream

        system = SystemConfig()
        tracker = strided_mirza(system, seed=1)
        harness = SingleBankHarness(tracker, system)
        harness.run(feinting_attack_stream(32, 150_000))
        config = tracker.config
        bound = (config.fth + mint_tolerated_trhs(config.mint_window)
                 + config.qth + abo_extra_acts() + 64)
        assert harness.max_unmitigated <= bound
