"""Tests for Table II analysis helpers and the area model."""

import pytest

from repro.security.analysis import (
    acts_per_ref_interval,
    mint_trh_for_mitigation_rate,
    mithril_trh_bound,
    refresh_cannibalization,
)
from repro.security.area import (
    AreaModel,
    mint_storage_bytes_per_bank,
    mirza_storage_bytes_per_bank,
    mithril_storage_bytes_per_bank,
    prac_counter_bits_for_trhd,
    rct_counter_bits,
    trr_storage_bytes_per_bank,
)


class TestActsPerRefInterval:
    def test_about_75_for_ddr5(self):
        assert acts_per_ref_interval() == 75  # (3900 - 410) / 46


class TestRefreshCannibalization:
    @pytest.mark.parametrize("rate,expected", [
        (1, 0.683), (2, 0.341), (4, 0.171), (8, 0.085)])
    def test_table2_column(self, rate, expected):
        # Table II: 68% / 34% / 17% / 8.5%.
        assert refresh_cannibalization(rate) == pytest.approx(
            expected, abs=0.005)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            refresh_cannibalization(0)


class TestMintTrhForRate:
    @pytest.mark.parametrize("rate,paper", [
        (1, 1500), (2, 2900), (4, 5800), (8, 11600)])
    def test_table2_mint_column(self, rate, paper):
        assert mint_trh_for_mitigation_rate(rate) == pytest.approx(
            paper, rel=0.05)

    def test_monotone(self):
        values = [mint_trh_for_mitigation_rate(r) for r in (1, 2, 4, 8)]
        assert values == sorted(values)


class TestMithrilBound:
    def test_positive_and_monotone_in_rate(self):
        a = mithril_trh_bound(2048, 1)
        b = mithril_trh_bound(2048, 8)
        assert 0 < a < b

    def test_validation(self):
        with pytest.raises(ValueError):
            mithril_trh_bound(0, 1)


class TestStorage:
    def test_rct_counter_bits(self):
        assert rct_counter_bits(1500) == 11
        assert rct_counter_bits(3330) == 12
        assert rct_counter_bits(660) == 10

    @pytest.mark.parametrize("regions,fth,paper_bytes", [
        (64, 3330, 116), (128, 1500, 196), (256, 660, 340)])
    def test_table7_sram_per_bank(self, regions, fth, paper_bytes):
        assert mirza_storage_bytes_per_bank(regions, fth) == paper_bytes

    def test_table12_storage_row(self):
        # TRR 84B, MINT 20B, MIRZA (32 regions at TRHD 4.8K) 72B.
        assert trr_storage_bytes_per_bank() == 84
        assert mint_storage_bytes_per_bank() == 20
        bytes_ = mirza_storage_bytes_per_bank(32, 9000)
        assert bytes_ == pytest.approx(72, abs=4)

    def test_mithril_7kb(self):
        assert mithril_storage_bytes_per_bank() == 7168


class TestPracBits:
    def test_table10_bit_widths(self):
        assert prac_counter_bits_for_trhd(1000) == 10
        assert prac_counter_bits_for_trhd(500) == 9
        assert prac_counter_bits_for_trhd(250) == 8

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            prac_counter_bits_for_trhd(0)


class TestAreaModel:
    @pytest.mark.parametrize("trhd,regions,fth,paper_ratio", [
        (1000, 128, 1500, 45.0),
        (500, 256, 660, 22.5),
        (250, 512, 316, 11.2),
    ])
    def test_table10_ratios(self, trhd, regions, fth, paper_ratio):
        model = AreaModel()
        ratio = model.prac_to_mirza_ratio(trhd, regions, fth)
        assert ratio == pytest.approx(paper_ratio, rel=0.05)

    def test_mirza_bits_per_subarray_table10(self):
        model = AreaModel()
        assert model.mirza_bits_per_subarray(128, 1500) == 11
        assert model.mirza_bits_per_subarray(256, 660) == 20
        assert model.mirza_bits_per_subarray(512, 316) == 36

    def test_prac_bits_per_subarray(self):
        model = AreaModel()
        assert model.prac_bits_per_subarray(1000) == 10 * 1024

    def test_cell_area_constants(self):
        model = AreaModel()
        assert model.dram_cell_f2 == 6.0
        assert model.sram_cell_f2 == 120.0
