"""Unit tests for the single-bank attack verification harness."""

from repro.mitigations.none import NoMitigation
from repro.mitigations.prac import PracTracker
from repro.security.attacks import SingleBankHarness


class TestHarnessBasics:
    def test_counts_acts_and_refs(self, small_config):
        h = SingleBankHarness(NoMitigation(), small_config,
                              acts_per_ref=10)
        h.run(iter([1] * 25))
        assert h.acts == 25
        assert h.refresh.refptr == 2

    def test_oracle_sees_unmitigated_acts(self, small_config):
        h = SingleBankHarness(NoMitigation(), small_config,
                              acts_per_ref=10 ** 9)
        h.run(iter([7] * 50))
        assert h.max_unmitigated == 50
        assert h.attack_succeeded(49)

    def test_refresh_sweep_resets_rows_in_order(self, small_config):
        h = SingleBankHarness(NoMitigation(), small_config,
                              acts_per_ref=10)
        # Hammer row 0; the first REF (rows 0..15) clears it.
        h.run(iter([0] * 10))
        assert h.bank.oracle.count(0) == 0
        assert h.max_unmitigated == 10  # sticky maximum

    def test_alert_allows_prologue_acts_then_services(self, small_config):
        tracker = PracTracker(trhd=100, alert_threshold=5)
        h = SingleBankHarness(tracker, small_config,
                              acts_per_ref=10 ** 9)
        h.run(iter([3] * 5))      # threshold reached, ALERT pending
        assert h.alerts == 0      # not serviced yet (prologue)
        h.run(iter([3] * 3))      # the 3 prologue ACTs land
        assert h.alerts == 1
        assert h.mitigations == 1
        assert h.bank.oracle.count(3) == 0

    def test_epilogue_act_required_before_next_alert(self, small_config):
        tracker = PracTracker(trhd=100, alert_threshold=2)
        h = SingleBankHarness(tracker, small_config,
                              acts_per_ref=10 ** 9)
        # Two rows crossing the threshold back to back: the second
        # ALERT must wait for at least one post-stall ACT.
        h.run(iter([1, 1, 2, 2, 1, 1, 1]))
        assert h.alerts >= 1

    def test_flush_alert_services_pending(self, small_config):
        tracker = PracTracker(trhd=100, alert_threshold=5)
        h = SingleBankHarness(tracker, small_config,
                              acts_per_ref=10 ** 9)
        h.run(iter([3] * 5))
        h.flush_alert()
        assert h.alerts == 1

    def test_prac_phase_d_bound(self, small_config):
        """The oracle-visible worst case for PRAC is ETH + prologue."""
        trhd = 64
        tracker = PracTracker(trhd=trhd, abo=small_config.abo)
        h = SingleBankHarness(tracker, small_config,
                              acts_per_ref=10 ** 9)
        h.run(iter([9] * 500))
        assert h.max_unmitigated <= trhd
        assert h.alerts >= 5
