"""Tests for MIRZA's phase A-D safe-TRH accounting (Section VI)."""

import pytest

from repro.params import AboTimings
from repro.security.mint_model import mint_tolerated_trhd
from repro.security.mirza_model import (
    abo_extra_acts,
    mirza_safe_trhd,
    mirza_safe_trhs,
    solve_fth,
)


class TestAboExtraActs:
    def test_default_is_seven(self):
        # Figure 10: row C accrues QTH + 7 activations.
        assert abo_extra_acts() == 7

    def test_scales_with_protocol_acts(self):
        generous = AboTimings(acts_during_prologue=5, epilogue_acts=2)
        assert abo_extra_acts(generous) == 2 * 7 - 1


class TestSafeTrh:
    def test_double_sided_formula(self):
        fth, window, qth = 1500, 12, 16
        expected = (fth // 2 + mint_tolerated_trhd(window) + qth
                    + 7 + 1)
        assert mirza_safe_trhd(fth, window, qth) == expected

    def test_single_sided_uses_full_fth(self):
        trhs = mirza_safe_trhs(1500, 12, 16)
        trhd = mirza_safe_trhd(1500, 12, 16)
        assert trhs - trhd == 1500 - 750 + mint_tolerated_trhd(12)

    def test_phase_monotonicity(self):
        base = mirza_safe_trhd(1000, 12, 16)
        assert mirza_safe_trhd(2000, 12, 16) > base   # bigger FTH
        assert mirza_safe_trhd(1000, 24, 16) > base   # bigger window
        assert mirza_safe_trhd(1000, 12, 32) > base   # bigger QTH


class TestSolveFth:
    @pytest.mark.parametrize("trhd,window,paper_fth", [
        (2000, 16, 3330), (1000, 12, 1500), (500, 8, 660)])
    def test_reproduces_table7(self, trhd, window, paper_fth):
        assert solve_fth(trhd, window) == pytest.approx(paper_fth,
                                                        rel=0.01)

    def test_solution_is_tight(self):
        fth = solve_fth(1000, 12)
        assert mirza_safe_trhd(fth, 12, 16) <= 1000
        assert mirza_safe_trhd(fth + 2, 12, 16) > 1000

    def test_infeasible_window_raises(self):
        with pytest.raises(ValueError):
            solve_fth(100, 128)

    def test_fth_zero_edge(self):
        # The smallest threshold a window can serve has FTH near zero.
        window = 4
        floor = mint_tolerated_trhd(window) + 16 + 7 + 1
        assert solve_fth(floor, window) in (0, 1, 2)
