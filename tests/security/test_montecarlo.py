"""Tests for the Monte Carlo cross-check of the MINT model."""

import pytest

from repro.security.montecarlo import (
    analytic_escape_probability,
    empirical_bound_check,
    escape_probability,
    max_unmitigated_distribution,
)
from repro.security.mint_model import mint_unmitigated_bound


class TestEscapeProbability:
    def test_matches_closed_form(self):
        measured = escape_probability(window=8, acts_per_window=1,
                                      windows=10, trials=3000, seed=1)
        analytic = analytic_escape_probability(8, 1, 10)
        assert measured == pytest.approx(analytic, abs=0.035)

    def test_heavier_hammering_escapes_less(self):
        light = escape_probability(8, 1, 8, trials=1500, seed=2)
        heavy = escape_probability(8, 4, 8, trials=1500, seed=2)
        assert heavy < light

    def test_validation(self):
        with pytest.raises(ValueError):
            escape_probability(8, 0, 5)
        with pytest.raises(ValueError):
            escape_probability(8, 9, 5)

    def test_full_window_hammer_always_caught(self):
        assert escape_probability(4, 4, 3, trials=300, seed=3) == 0.0


class TestMaxUnmitigatedDistribution:
    def test_returns_one_value_per_trial(self):
        values = max_unmitigated_distribution(8, trials=50,
                                              horizon_acts=4000)
        assert len(values) == 50
        assert all(v >= 1 for v in values)

    def test_wider_window_sustains_more(self):
        narrow = max_unmitigated_distribution(4, trials=60,
                                              horizon_acts=8000,
                                              seed=4)
        wide = max_unmitigated_distribution(16, trials=60,
                                            horizon_acts=8000, seed=4)
        assert sum(wide) / len(wide) > sum(narrow) / len(narrow)


class TestBoundCheck:
    def test_empirical_max_below_analytic_bound(self):
        """The analytic bound at 2^-28.5 must dominate anything a few
        hundred trials can produce (those only probe ~2^-8 tails)."""
        result = empirical_bound_check(window=8, fail_exponent=28.5,
                                       trials=200, horizon_acts=20_000)
        assert result["empirical_max"] < result["analytic_bound"]
        assert result["implied_exponent"] < 28.5

    def test_bound_grows_with_exponent(self):
        assert mint_unmitigated_bound(12, 40) > \
            mint_unmitigated_bound(12, 20)
