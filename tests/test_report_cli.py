"""Tests for the report generator and CLI entry point."""

import pytest

from repro.__main__ import main as cli_main
from repro.report import (
    _canonical,
    exhibit_names,
    generate_markdown,
    run_exhibit,
)


class TestCanonicalNames:
    def test_roman_and_arabic_agree(self):
        assert _canonical("Table X") == _canonical("table10")
        assert _canonical("Table VII") == _canonical("table7")
        assert _canonical("Figure 11") == _canonical("fig11")

    def test_distinct_exhibits_stay_distinct(self):
        names = [_canonical(n) for n in exhibit_names()]
        assert len(set(names)) == len(names)


class TestRunExhibit:
    def test_runs_analytic_exhibit(self):
        out = run_exhibit("table7")
        assert "196" in out

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            run_exhibit("table99")

    def test_output_is_silent(self, capsys):
        run_exhibit("table1")
        assert capsys.readouterr().out == ""


class TestGenerateMarkdown:
    def test_selected_exhibits_only(self):
        report = generate_markdown(only=["table7", "table10"],
                                   progress=False)
        assert "Table VII" in report
        assert "Table X" in report
        assert "Figure 3" not in report
        assert report.count("```") == 4


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Table VII" in out

    def test_single_exhibit(self, capsys):
        assert cli_main(["table10"]) == 0
        assert "45" in capsys.readouterr().out

    def test_unknown_exhibit(self, capsys):
        assert cli_main(["tableZZ"]) == 2

    def test_help(self, capsys):
        assert cli_main(["--help"]) == 0
        assert "report" in capsys.readouterr().out

    def test_report_writes_file(self, tmp_path, monkeypatch, capsys):
        target = tmp_path / "report.md"
        monkeypatch.setenv("REPRO_WORKLOADS", "tc")
        monkeypatch.setenv("REPRO_TIME_SCALE", "4096")
        monkeypatch.setenv("REPRO_CGF_SCALE", "512")
        import repro.report as report_module
        monkeypatch.setattr(
            report_module, "EXHIBITS",
            [e for e in report_module.EXHIBITS
             if e[0] in ("Table I", "Table VII")])
        assert cli_main(["report", str(target)]) == 0
        assert "Table VII" in target.read_text()


class TestCliFlags:
    def test_run_subcommand_is_explicit_spelling(self, capsys):
        assert cli_main(["run", "table10"]) == 0
        assert "45" in capsys.readouterr().out

    def test_run_unknown_exhibit(self, capsys):
        assert cli_main(["run", "tableZZ"]) == 2
        assert "unknown exhibit" in capsys.readouterr().err

    def test_flags_beat_environment(self, monkeypatch):
        from repro.__main__ import _build_parser, _environment
        import os
        monkeypatch.setenv("REPRO_TIME_SCALE", "64")
        monkeypatch.setenv("REPRO_SEED", "9")
        args = _build_parser().parse_args(
            ["run", "table1", "--time-scale", "4096"])
        with _environment(args):
            assert os.environ["REPRO_TIME_SCALE"] == "4096"
            assert os.environ["REPRO_SEED"] == "9"  # no flag: env wins
        assert os.environ["REPRO_TIME_SCALE"] == "64"  # restored

    def test_session_honours_cache_flags(self, tmp_path):
        from repro.__main__ import _build_parser, _session_for
        args = _build_parser().parse_args(
            ["report", "--cache-dir", str(tmp_path), "--jobs", "3"])
        session = _session_for(args)
        assert session.cache_dir == str(tmp_path)
        assert session.disk_cache
        assert session.max_workers == 3
        args = _build_parser().parse_args(["report", "--no-cache"])
        assert not _session_for(args).disk_cache

    def test_report_with_no_cache_and_jobs(self, tmp_path,
                                           monkeypatch, capsys):
        target = tmp_path / "report.md"
        monkeypatch.setenv("REPRO_WORKLOADS", "tc")
        import repro.report as report_module
        monkeypatch.setattr(
            report_module, "EXHIBITS",
            [e for e in report_module.EXHIBITS
             if e[0] == "Table VII"])
        assert cli_main(["report", str(target), "--no-cache",
                         "--jobs", "1", "--time-scale", "4096",
                         "--cgf-scale", "512"]) == 0
        assert "Table VII" in target.read_text()


class TestFailurePolicyFlags:
    def _session(self, argv):
        from repro.__main__ import _build_parser, _session_for
        return _session_for(_build_parser().parse_args(argv))

    def test_report_defaults_to_keep_going(self):
        from repro.sim.session import FailurePolicy
        session = self._session(["report"])
        assert session.failure_policy is FailurePolicy.KEEP_GOING

    def test_other_commands_default_to_fail_fast(self):
        from repro.sim.session import FailurePolicy
        for argv in (["run", "table10"], ["stats", "table10"]):
            session = self._session(argv)
            assert session.failure_policy is FailurePolicy.FAIL_FAST

    def test_explicit_flags_beat_the_command_default(self):
        from repro.sim.session import FailurePolicy
        assert self._session(["report", "--fail-fast"]) \
            .failure_policy is FailurePolicy.FAIL_FAST
        assert self._session(["run", "table10", "--keep-going"]) \
            .failure_policy is FailurePolicy.KEEP_GOING

    def test_keep_going_and_fail_fast_are_exclusive(self, capsys):
        from repro.__main__ import _build_parser
        with pytest.raises(SystemExit):
            _build_parser().parse_args(
                ["report", "--keep-going", "--fail-fast"])

    def test_retry_and_timeout_flags_reach_the_session(self):
        session = self._session(["report", "--max-retries", "3",
                                 "--job-timeout", "2.5"])
        assert session.max_retries == 3
        assert session.job_timeout == 2.5

    def test_fault_injected_report_degrades_then_resumes(
            self, tmp_path, monkeypatch, capsys):
        # The CI smoke scenario: injected faults with no retry budget
        # degrade the report; a clean rerun resumes from the cells
        # that were cached as they finished.
        target = tmp_path / "report.md"
        monkeypatch.setenv("REPRO_WORKLOADS", "tc")
        monkeypatch.setenv("REPRO_FAULT_SEED", "0")
        import repro.report as report_module
        monkeypatch.setattr(
            report_module, "EXHIBITS",
            [e for e in report_module.EXHIBITS
             if e[0] == "Figure 11"])
        common = ["report", str(target), "--only", "fig11",
                  "--cache-dir", str(tmp_path / "cache"),
                  "--time-scale", "4096", "--cgf-scale", "512"]
        with monkeypatch.context() as patch:
            patch.setenv("REPRO_FAULT_RATE", "0.4")
            assert cli_main(common + ["--keep-going",
                                      "--max-retries", "0"]) == 0
        degraded_text = target.read_text()
        assert "DEGRADED" in degraded_text
        assert "exhibit(s) DEGRADED (fig11)" in degraded_text
        # Clean rerun: the surviving cells come back from disk, the
        # failed ones recompute, and nothing is degraded any more.
        assert cli_main(common) == 0
        clean_text = target.read_text()
        assert "DEGRADED" not in clean_text
        assert "from cache" in clean_text
