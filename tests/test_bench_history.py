"""Tests for the benchmark-history trend gate (bench_history.py)."""

import importlib.util
import json
import os

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load(name):
    path = os.path.join(_ROOT, "benchmarks", f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def hist():
    return _load("bench_history")


def _payload(rps, commit="abc1234", machine="x86_64"):
    return {
        "meta": {"time_scale": 4096, "smoke": True,
                 "backends": ["event"], "python": "3.11",
                 "machine": machine, "commit": commit,
                 "timestamp": "2026-08-08T00:00:00+00:00"},
        "results": {
            "tc/mirza-1000": {"seconds": 0.1, "requests": 1000,
                              "activations": 500,
                              "requests_per_sec": rps,
                              "activations_per_sec": rps / 2},
        },
    }


class TestEntryShape:
    def test_entry_from_payload_carries_meta_and_cells(self, hist):
        entry = hist.entry_from_payload(_payload(50_000.0))
        assert entry["commit"] == "abc1234"
        assert entry["timestamp"].startswith("2026-")
        assert entry["meta"]["machine"] == "x86_64"
        assert entry["results"] == {"tc/mirza-1000": 50_000.0}

    def test_explicit_commit_overrides_meta(self, hist):
        entry = hist.entry_from_payload(_payload(1.0),
                                        commit="deadbeef")
        assert entry["commit"] == "deadbeef"

    def test_empty_payload_is_an_error(self, hist):
        with pytest.raises(ValueError):
            hist.entry_from_payload({"meta": {}, "results": {}})


class TestHistoryFile:
    def test_append_and_load_round_trip(self, hist, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        a = hist.entry_from_payload(_payload(10_000.0))
        b = hist.entry_from_payload(_payload(11_000.0))
        hist.append_entry(path, a)
        hist.append_entry(path, b)
        loaded = hist.load_history(path)
        assert loaded == [a, b]

    def test_missing_file_is_empty_history(self, hist, tmp_path):
        assert hist.load_history(str(tmp_path / "nope.jsonl")) == []

    def test_malformed_line_is_a_hard_error(self, hist, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"results": {}}\nnot json\n')
        with pytest.raises(ValueError, match="malformed"):
            hist.load_history(str(path))


class TestRegressionGate:
    def _history(self, hist, *rps_values, machines=None):
        machines = machines or ["x86_64"] * len(rps_values)
        return [hist.entry_from_payload(_payload(rps, machine=m))
                for rps, m in zip(rps_values, machines)]

    def test_stable_history_passes(self, hist):
        history = self._history(hist, 50_000.0, 51_000.0, 49_000.0)
        assert hist.evaluate(history, tolerance=0.25) == []

    def test_regression_beyond_tolerance_is_flagged(self, hist):
        history = self._history(hist, 50_000.0, 50_000.0, 30_000.0)
        regressions = hist.evaluate(history, tolerance=0.25)
        assert len(regressions) == 1
        assert "tc/mirza-1000" in regressions[0]

    def test_single_entry_passes_trivially(self, hist):
        history = self._history(hist, 50_000.0)
        assert hist.evaluate(history, tolerance=0.25) == []

    def test_other_machines_are_not_compared(self, hist):
        history = self._history(hist, 90_000.0, 30_000.0,
                                machines=["arm64", "x86_64"])
        assert hist.evaluate(history, tolerance=0.25) == []

    def test_trend_table_renders_every_cell(self, hist):
        history = self._history(hist, 50_000.0, 60_000.0)
        table = hist.trend_table(history)
        assert "tc/mirza-1000" in table
        assert "50,000" in table and "60,000" in table


class TestCli:
    def test_check_passes_on_committed_seed(self, hist):
        seed = os.path.join(_ROOT, "benchmarks",
                            "BENCH_history.seed.jsonl")
        assert hist.main(["--check", "--history", seed]) == 0

    def test_check_fails_on_regressed_history(self, hist, tmp_path,
                                              capsys):
        path = str(tmp_path / "hist.jsonl")
        for rps in (50_000.0, 50_000.0, 10_000.0):
            hist.append_entry(
                path, hist.entry_from_payload(_payload(rps)))
        assert hist.main(["--check", "--history", path]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_append_persists_input_run(self, hist, tmp_path):
        bench = tmp_path / "BENCH_kernel.json"
        bench.write_text(json.dumps(_payload(42_000.0)))
        path = str(tmp_path / "hist.jsonl")
        assert hist.main(["--input", str(bench), "--append",
                          "--history", path]) == 0
        assert len(hist.load_history(path)) == 1

    def test_input_without_append_leaves_file_alone(self, hist,
                                                    tmp_path):
        bench = tmp_path / "BENCH_kernel.json"
        bench.write_text(json.dumps(_payload(42_000.0)))
        path = str(tmp_path / "hist.jsonl")
        assert hist.main(["--input", str(bench),
                          "--history", path]) == 0
        assert hist.load_history(path) == []

    def test_empty_history_without_input_errors(self, hist, tmp_path,
                                                capsys):
        path = str(tmp_path / "empty.jsonl")
        assert hist.main(["--history", path]) == 2
        assert "empty" in capsys.readouterr().err

    def test_bench_kernel_meta_is_stamped(self):
        bench = _load("bench_kernel")
        commit = bench.git_commit()
        assert isinstance(commit, str) and commit
        stamp = bench.iso_timestamp()
        assert "T" in stamp and stamp.endswith("+00:00")
