"""Tests for the Hydra and BlockHammer related-work implementations."""

import pytest

from repro.dram.refresh import RefreshScheduler
from repro.mitigations.base import MitigationSlotSource
from repro.mitigations.blockhammer import (
    BlockHammerThrottle,
    CountingBloomFilter,
)
from repro.mitigations.hydra import HydraTracker

REF = MitigationSlotSource.REF


class TestHydra:
    def make(self, **kw):
        defaults = dict(rows_per_bank=1024, rows_per_group=64,
                        group_threshold=10, mitigation_threshold=20,
                        cache_entries=4)
        defaults.update(kw)
        return HydraTracker(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(rows_per_group=100)  # does not divide
        with pytest.raises(ValueError):
            self.make(mitigation_threshold=5)

    def test_cold_group_stays_in_group_stage(self):
        t = self.make()
        for _ in range(10):
            t.on_activate(5, 0)
        assert t.exact_count(5) == 0
        assert t.dram_lookups == 0

    def test_overflow_installs_sound_upper_bounds(self):
        t = self.make()
        for _ in range(11):
            t.on_activate(5, 0)
        # Row 5's exact counter starts at the group count: it can only
        # overestimate, never undercount (security-sound).
        assert t.exact_count(5) == 11
        assert t.exact_count(6) == 10  # same group, never activated

    def test_mitigation_at_exact_threshold(self):
        t = self.make()
        for _ in range(20):
            t.on_activate(5, 0)
        assert t.on_mitigation_slot(0, REF) == [5]
        assert t.exact_count(5) == 0

    def test_cache_misses_cost_dram_lookups(self):
        t = self.make(cache_entries=2)
        for _ in range(11):
            t.on_activate(0, 0)  # group 0 overflows
        lookups = t.dram_lookups
        # Touch more distinct rows than the cache holds: every new row
        # is a miss.
        for row in (1, 2, 3, 4):
            t.on_activate(row, 0)
        assert t.dram_lookups >= lookups + 4

    def test_ref_resets_row_counters_and_wrap_resets_groups(self,
                                                            tiny_geometry):
        t = HydraTracker(rows_per_bank=256, rows_per_group=16,
                         group_threshold=4, mitigation_threshold=8)
        scheduler = RefreshScheduler(tiny_geometry)
        for _ in range(6):
            t.on_activate(0, 0)
        t.on_ref_slice(scheduler.advance(), 0)  # sweeps rows 0..15
        assert t.exact_count(0) == 0
        for _ in range(scheduler.refs_per_window - 1):
            t.on_ref_slice(scheduler.advance(), 0)
        assert t._group_counts == {}

    def test_sram_storage_is_small(self):
        t = HydraTracker()  # full-size defaults
        # Far below a per-row table (128K rows x 10b = 160KB).
        assert t.storage_bits() / 8 < 2048


class TestCountingBloomFilter:
    def test_never_underestimates(self):
        f = CountingBloomFilter(counters=64, hashes=3)
        true = {}
        for i in range(300):
            row = i % 17
            f.insert(row)
            true[row] = true.get(row, 0) + 1
        for row, count in true.items():
            assert f.estimate(row) >= count

    def test_clear(self):
        f = CountingBloomFilter()
        f.insert(5)
        f.clear()
        assert f.estimate(5) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(counters=0)


class TestBlockHammer:
    def make(self, trh=100, trefw=1_000_000):
        return BlockHammerThrottle(trh=trh, trefw_ps=trefw)

    def test_cold_rows_not_delayed(self):
        b = self.make()
        assert b.required_delay_ps(5, 0) == 0

    def test_hot_row_gets_paced(self):
        b = self.make(trh=100)
        t = 0
        for _ in range(60):  # past the 50-ACT blacklist threshold
            b.on_activate(7, t)
            t += 10
        delay = b.required_delay_ps(7, t)
        assert delay > 0

    def test_other_rows_unaffected_by_hot_row(self):
        b = self.make(trh=100)
        t = 0
        for _ in range(60):
            b.on_activate(7, t)
            t += 10
        assert b.required_delay_ps(9999, t) == 0

    def test_pacing_bounds_acts_per_window(self):
        """Security: even an attacker that always waits out the delay
        cannot exceed the threshold within a window."""
        b = self.make(trh=100, trefw=1_000_000)
        t = 0
        acts_in_window = 0
        while t < 1_000_000:
            delay = b.required_delay_ps(7, t)
            t += delay
            if t >= 1_000_000:
                break
            b.on_activate(7, t)
            acts_in_window += 1
            t += 1  # attacker fires as fast as allowed
        assert acts_in_window <= b.max_acts_per_window()
        assert b.max_acts_per_window() < 3 * b.trh

    def test_epoch_rotation_forgets_old_activity(self):
        b = self.make(trh=100, trefw=1_000_000)
        for i in range(60):
            b.on_activate(7, i)
        # A full window later both epochs have rotated past the burst.
        assert b.required_delay_ps(7, 1_100_000) == 0
        assert b.estimate(7) == 0

    def test_throttled_acts_counted(self):
        b = self.make(trh=100)
        t = 0
        for _ in range(60):
            b.on_activate(7, t)
            t += 10
        assert b.throttled_acts > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockHammerThrottle(trh=1, trefw_ps=1000)
