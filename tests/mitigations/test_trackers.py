"""Tests for the baseline trackers: TRR, PARA, Mithril, MINT, PRAC."""

import random

import pytest

from repro.dram.refresh import RefreshScheduler
from repro.mitigations.base import MitigationSlotSource
from repro.mitigations.mint_rfm import MintTracker
from repro.mitigations.mithril import MithrilTracker
from repro.mitigations.none import NoMitigation
from repro.mitigations.para import ParaTracker
from repro.mitigations.prac import PracTracker, prac_alert_threshold
from repro.mitigations.trr import TrrTracker

REF = MitigationSlotSource.REF
RFM = MitigationSlotSource.RFM
ALERT = MitigationSlotSource.ALERT


class TestNoMitigation:
    def test_never_alerts_never_mitigates(self):
        t = NoMitigation()
        for i in range(100):
            t.on_activate(i, 0)
        assert not t.wants_alert()
        assert t.on_mitigation_slot(0, REF) == []
        assert t.storage_bits() == 0


class TestTrr:
    def test_tracks_and_mitigates_hot_row(self):
        t = TrrTracker(entries=4, refs_per_mitigation=1,
                       mitigation_threshold=8)
        for _ in range(10):
            t.on_activate(42, 0)
        assert t.on_mitigation_slot(0, REF) == [42]

    def test_respects_mitigation_cadence(self):
        t = TrrTracker(entries=4, refs_per_mitigation=4,
                       mitigation_threshold=1)
        t.on_activate(42, 0)
        slots = [t.on_mitigation_slot(0, REF) for _ in range(4)]
        assert slots[:3] == [[], [], []]
        assert slots[3] == [42]

    def test_cold_max_not_mitigated(self):
        t = TrrTracker(entries=4, refs_per_mitigation=1,
                       mitigation_threshold=100)
        t.on_activate(42, 0)
        assert t.on_mitigation_slot(0, REF) == []

    def test_eviction_of_minimum_entry(self):
        t = TrrTracker(entries=2, refs_per_mitigation=1)
        t.on_activate(1, 0)
        t.on_activate(1, 0)
        t.on_activate(2, 0)
        t.on_activate(3, 0)  # evicts 2 (the minimum), not 1
        assert set(t._table) == {1, 3}

    def test_ignores_non_ref_slots(self):
        t = TrrTracker(entries=4, refs_per_mitigation=1,
                       mitigation_threshold=1)
        t.on_activate(42, 0)
        assert t.on_mitigation_slot(0, RFM) == []

    def test_storage_is_84_bytes(self):
        # Table XII: 28 entries x 3 bytes.
        assert TrrTracker().storage_bits() == 84 * 8

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TrrTracker(entries=0)


class TestPara:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ParaTracker(0.0)
        with pytest.raises(ValueError):
            ParaTracker(1.5)

    def test_probability_one_marks_everything(self):
        t = ParaTracker(1.0, random.Random(0))
        t.on_activate(7, 0)
        assert t.on_mitigation_slot(0, REF) == [7]

    def test_selection_rate_close_to_p(self):
        t = ParaTracker(0.25, random.Random(1), pending_capacity=10 ** 6)
        n = 4000
        for i in range(n):
            t.on_activate(i, 0)
        selected = len(t._pending)
        assert abs(selected - n * 0.25) < 4 * (n * 0.25 * 0.75) ** 0.5

    def test_capacity_drops_counted(self):
        t = ParaTracker(1.0, random.Random(0), pending_capacity=2)
        for i in range(5):
            t.on_activate(i, 0)
        assert t.dropped == 3

    def test_fifo_mitigation_order(self):
        t = ParaTracker(1.0, random.Random(0), pending_capacity=4)
        t.on_activate(1, 0)
        t.on_activate(2, 0)
        assert t.on_mitigation_slot(0, REF) == [1]
        assert t.on_mitigation_slot(0, RFM) == [2]


class TestMithril:
    def test_counts_tracked_rows(self):
        t = MithrilTracker(entries=4)
        for _ in range(5):
            t.on_activate(1, 0)
        assert t._table[1] == 5

    def test_misra_gries_replacement_adopts_floor(self):
        t = MithrilTracker(entries=2)
        for _ in range(5):
            t.on_activate(1, 0)
        for _ in range(3):
            t.on_activate(2, 0)
        t.on_activate(3, 0)  # replaces row 2 (min=3): count = 3 + 1
        assert t._table[3] == 4
        assert t.spills == 1

    def test_mitigates_max_under_ref_cadence(self):
        t = MithrilTracker(entries=8, refs_per_mitigation=2)
        for _ in range(9):
            t.on_activate(5, 0)
        assert t.on_mitigation_slot(0, REF) == []
        assert t.on_mitigation_slot(0, REF) == [5]

    def test_mitigation_resets_to_floor_not_zero(self):
        t = MithrilTracker(entries=2, refs_per_mitigation=1)
        for _ in range(5):
            t.on_activate(1, 0)
        for _ in range(3):
            t.on_activate(2, 0)
        t.on_mitigation_slot(0, REF)
        assert t._table[1] == 3  # floor = row 2's count

    def test_counter_soundness_upper_bound(self):
        # Misra-Gries invariant: the tracked count never underestimates
        # the true count (it may overestimate by the adopted floor).
        rng = random.Random(3)
        t = MithrilTracker(entries=8)
        true = {}
        for _ in range(2000):
            row = rng.randrange(40)
            true[row] = true.get(row, 0) + 1
            t.on_activate(row, 0)
        for row, count in t._table.items():
            assert count >= 0
            # The max-tracked row's count bounds its true count.
        top = max(t._table, key=t._table.get)
        assert t._table[top] >= true.get(top, 0) * 0.5

    def test_storage_7kb_at_2k_entries(self):
        # Section VIII-A: 2K entries -> ~7KB per bank.
        assert MithrilTracker(entries=2048).storage_bits() / 8 == \
            pytest.approx(7168, rel=0.01)


class TestMintTracker:
    def test_selection_flows_to_rfm_slot(self):
        t = MintTracker(window=1, rng=random.Random(0))
        t.on_activate(9, 0)
        assert t.on_mitigation_slot(0, RFM) == [9]

    def test_ref_pacing(self):
        t = MintTracker(window=1, refs_per_mitigation=2,
                        rng=random.Random(0))
        t.on_activate(9, 0)
        assert t.on_mitigation_slot(0, REF) == []
        assert t.on_mitigation_slot(0, REF) == [9]

    def test_rfm_paced_tracker_declines_ref(self):
        t = MintTracker(window=1, refs_per_mitigation=0,
                        rng=random.Random(0))
        t.on_activate(9, 0)
        assert t.on_mitigation_slot(0, REF) == []
        assert t.on_mitigation_slot(0, RFM) == [9]

    def test_dmq_overflow_drops_oldest(self):
        t = MintTracker(window=1, dmq_entries=2, rng=random.Random(0))
        for row in (1, 2, 3):
            t.on_activate(row, 0)
        assert t.dropped_selections == 1
        assert t.on_mitigation_slot(0, RFM) == [2]

    def test_one_selection_per_window(self):
        t = MintTracker(window=10, dmq_entries=10 ** 6,
                        rng=random.Random(5))
        for i in range(100):
            t.on_activate(i, 0)
        assert len(t._pending) == 10

    def test_storage_about_20_bytes(self):
        assert MintTracker(window=48).storage_bits() / 8 < 20


class TestPrac:
    def test_alert_threshold_leaves_abo_margin(self):
        assert prac_alert_threshold(1000) == 1000 - 7

    def test_alert_threshold_too_low(self):
        with pytest.raises(ValueError):
            prac_alert_threshold(5)

    def test_alert_asserted_at_threshold(self):
        t = PracTracker(trhd=100)
        for _ in range(92):
            t.on_activate(3, 0)
        assert not t.wants_alert()
        t.on_activate(3, 0)
        assert t.wants_alert()

    def test_mitigation_resets_counter(self):
        t = PracTracker(trhd=100)
        for _ in range(93):
            t.on_activate(3, 0)
        assert t.on_mitigation_slot(0, ALERT) == [3]
        assert not t.wants_alert()
        assert t._counters[3] == 0

    def test_ref_slice_resets_swept_rows(self, small_geometry):
        t = PracTracker(trhd=100)
        scheduler = RefreshScheduler(small_geometry)
        t.on_activate(0, 0)
        t.on_activate(100, 0)
        t.on_ref_slice(scheduler.advance(), 0)  # sweeps rows 0..15
        assert t.max_counter() == 1
        assert 0 not in t._counters

    def test_declines_ref_slots(self):
        t = PracTracker(trhd=100)
        for _ in range(95):
            t.on_activate(3, 0)
        assert t.on_mitigation_slot(0, REF) == []
        assert t.wants_alert()

    def test_no_sram_storage(self):
        # PRAC's counters live in the DRAM array (area model covers it).
        assert PracTracker(trhd=1000).storage_bits() == 0

    def test_multiple_rows_over_threshold_drain_in_order(self):
        t = PracTracker(trhd=100, alert_threshold=2)
        t.on_activate(1, 0)
        t.on_activate(1, 0)
        t.on_activate(2, 0)
        t.on_activate(2, 0)
        assert t.on_mitigation_slot(0, ALERT) == [1]
        assert t.wants_alert()
        assert t.on_mitigation_slot(0, ALERT) == [2]
        assert not t.wants_alert()
