"""Tests for Naive MIRZA (MINT + ABO + queue, no filtering)."""

import random

from repro.mitigations.naive_mirza import NaiveMirzaTracker
from repro.mitigations.base import MitigationSlotSource


class TestNaiveMirza:
    def test_every_act_after_first_participates(self, small_geometry):
        t = NaiveMirzaTracker(mint_window=1, rng=random.Random(0),
                              geometry=small_geometry)
        t.on_activate(0, 0)   # the single region counter goes 0 -> 1
        t.on_activate(1, 0)   # escapes (counter 1 > FTH 0)
        assert t.mint.observed == 1

    def test_fth_is_zero(self, small_geometry):
        t = NaiveMirzaTracker(mint_window=4, geometry=small_geometry)
        assert t.config.fth == 0
        assert t.config.num_regions == 1

    def test_selected_rows_queue_and_alert(self, small_geometry):
        t = NaiveMirzaTracker(mint_window=1, queue_entries=2,
                              rng=random.Random(0),
                              geometry=small_geometry)
        for row in range(4):
            t.on_activate(row, 0)
        assert t.wants_alert()
        rows = t.on_mitigation_slot(0, MitigationSlotSource.ALERT)
        assert len(rows) == 1

    def test_storage_excludes_rct(self, small_geometry):
        naive = NaiveMirzaTracker(mint_window=12,
                                  geometry=small_geometry)
        # Just the queue and the MINT entry: well under 40 bytes.
        assert naive.storage_bits() / 8 < 40

    def test_selection_rate_close_to_one_per_window(self, small_geometry):
        t = NaiveMirzaTracker(mint_window=8, queue_entries=10 ** 6,
                              qth=10 ** 6, rng=random.Random(1),
                              geometry=small_geometry)
        # Distinct rows: already-queued rows bypass MINT (case 2 of
        # Section V-B), so a repeating pattern would undercount.
        for i in range(801):
            t.on_activate(i, 0)
        assert abs(t.mint.selected - 100) <= 1
