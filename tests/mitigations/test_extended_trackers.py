"""Tests for the extended baselines: PrIDE, ProTRR, QPRAC."""

import random

import pytest

from repro.mitigations.base import MitigationSlotSource
from repro.mitigations.pride import PrideTracker
from repro.mitigations.protrr import ProTrrTracker
from repro.mitigations.qprac import QpracTracker

REF = MitigationSlotSource.REF
RFM = MitigationSlotSource.RFM
ALERT = MitigationSlotSource.ALERT


class TestPride:
    def test_validation(self):
        with pytest.raises(ValueError):
            PrideTracker(insertion_probability=0.0)
        with pytest.raises(ValueError):
            PrideTracker(queue_entries=0)

    def test_insertion_probability_one_enqueues_all(self):
        t = PrideTracker(insertion_probability=1.0, queue_entries=8)
        for row in range(5):
            t.on_activate(row, 0)
        assert t.occupancy == 5

    def test_fifo_order(self):
        t = PrideTracker(insertion_probability=1.0, queue_entries=8)
        t.on_activate(3, 0)
        t.on_activate(7, 0)
        assert t.on_mitigation_slot(0, REF) == [3]
        assert t.on_mitigation_slot(0, RFM) == [7]

    def test_full_queue_drops(self):
        t = PrideTracker(insertion_probability=1.0, queue_entries=2)
        for row in range(4):
            t.on_activate(row, 0)
        assert t.dropped == 2
        assert t.occupancy == 2

    def test_insertion_rate_close_to_p(self):
        t = PrideTracker(insertion_probability=0.125,
                         queue_entries=10 ** 6,
                         rng=random.Random(5))
        n = 8000
        for i in range(n):
            t.on_activate(i, 0)
        expected = n * 0.125
        assert abs(t.insertions - expected) < 5 * expected ** 0.5

    def test_ref_cadence(self):
        t = PrideTracker(insertion_probability=1.0,
                         refs_per_mitigation=2)
        t.on_activate(9, 0)
        assert t.on_mitigation_slot(0, REF) == []
        assert t.on_mitigation_slot(0, REF) == [9]

    def test_storage_tiny(self):
        assert PrideTracker().storage_bits() / 8 < 16


class TestProTrr:
    def test_tracked_increment(self):
        t = ProTrrTracker(entries=4)
        for _ in range(3):
            t.on_activate(1, 0)
        assert t.tracked_count(1) == 3

    def test_decrement_all_on_full_table(self):
        t = ProTrrTracker(entries=2)
        t.on_activate(1, 0)
        t.on_activate(1, 0)
        t.on_activate(2, 0)
        t.on_activate(3, 0)  # full: everyone decrements
        assert t.tracked_count(1) == 1
        assert t.tracked_count(2) == 0  # zeroed and released
        assert t.tracked_count(3) == 1  # claimed the freed slot
        assert t.decrements == 1

    def test_decrement_without_free_slot_drops_incoming(self):
        t = ProTrrTracker(entries=2)
        for _ in range(3):
            t.on_activate(1, 0)
            t.on_activate(2, 0)
        t.on_activate(3, 0)
        # Both survivors stayed above zero: row 3 was not adopted.
        assert t.tracked_count(3) == 0
        assert t.tracked_count(1) == 2

    def test_misra_gries_undercount_bound(self):
        # Classic guarantee: true_count - N/(k+1) <= tracked_count.
        k = 8
        t = ProTrrTracker(entries=k)
        rng = random.Random(1)
        true = {}
        n = 3000
        for _ in range(n):
            row = rng.randrange(40)
            true[row] = true.get(row, 0) + 1
            t.on_activate(row, 0)
        for row, count in true.items():
            assert t.tracked_count(row) >= count - n / (k + 1) - 1

    def test_mitigates_max_and_releases(self):
        t = ProTrrTracker(entries=4, refs_per_mitigation=1)
        for _ in range(5):
            t.on_activate(9, 0)
        t.on_activate(2, 0)
        assert t.on_mitigation_slot(0, REF) == [9]
        assert t.tracked_count(9) == 0

    def test_storage_7kb_at_2k_entries(self):
        assert ProTrrTracker(entries=2048).storage_bits() / 8 == 7168


class TestQprac:
    def test_opportunistic_ref_service(self):
        t = QpracTracker(trhd=100, service_threshold=4)
        for _ in range(4):
            t.on_activate(7, 0)
        assert t.on_mitigation_slot(0, REF) == [7]
        assert t.proactive_mitigations == 1
        assert not t.wants_alert()

    def test_cold_rows_not_serviced(self):
        t = QpracTracker(trhd=100, service_threshold=10)
        t.on_activate(7, 0)
        assert t.on_mitigation_slot(0, REF) == []

    def test_alert_still_backstops(self):
        # Disable REF service by never granting REF slots: the ABO
        # path must still fire at the alert threshold.
        t = QpracTracker(trhd=100, service_threshold=50)
        for _ in range(93):
            t.on_activate(7, 0)
        assert t.wants_alert()
        assert t.on_mitigation_slot(0, ALERT) == [7]

    def test_ref_service_prevents_alerts_under_hammer(self,
                                                      small_geometry):
        from repro.params import SystemConfig
        from repro.security.attacks import SingleBankHarness
        t = QpracTracker(trhd=200)
        h = SingleBankHarness(t, SystemConfig(geometry=small_geometry),
                              acts_per_ref=50)
        h.run(iter([42] * 20_000))
        # The hot row is drained under REF before reaching the alert
        # threshold: zero ALERTs, many proactive mitigations.
        assert h.alerts == 0
        assert t.proactive_mitigations > 100
        assert not h.attack_succeeded(200)

    def test_queue_bound_respected(self):
        t = QpracTracker(trhd=100, service_threshold=1,
                         queue_entries=2)
        for row in range(5):
            t.on_activate(row, 0)
        assert len(t._queued) <= 2
