"""Kernel-backend API tests and the event/array/vector identity gate.

The fast backends' entire value proposition is "same bits, less
time", so the core of this module is a parametrized sweep: every
mitigation family in the repository runs the same (workload, scale,
seed) window under the event backend and each fast backend, and the
observable result fields must match exactly.  The registry/env/CLI
plumbing and the serial-vs-pool equivalence under the fast backends
are covered around it.
"""

from __future__ import annotations

import random
import warnings

import pytest

from repro.params import SimScale
from repro.sim import backend as backend_mod
from repro.sim.backend import (
    ArrayBackend,
    EventBackend,
    KernelBackend,
    VectorBackend,
    available_backends,
    backend_by_name,
    default_backend_name,
    resolve_backend,
    vector_available,
)
from repro.sim.runner import (
    MitigationSetup,
    _bank_rng,
    baseline_setup,
    mint_rfm_setup,
    mirza_setup,
    mist_setup,
    naive_mirza_setup,
    prac_setup,
    simulate,
)

SCALE = SimScale(2048)
SEED = 0

FAST_BACKENDS = [
    "array",
    pytest.param("vector", marks=pytest.mark.skipif(
        not vector_available(),
        reason="vector backend needs numpy>=1.24")),
]
"""The backends that must be bit-identical to ``event``."""


# ----------------------------------------------------------------------
# Registry / selection API
# ----------------------------------------------------------------------
def test_builtin_backends_registered():
    assert available_backends() == ["array", "event", "vector"]
    assert isinstance(backend_by_name("event"), EventBackend)
    assert isinstance(backend_by_name("array"), ArrayBackend)
    assert isinstance(backend_by_name("vector"), VectorBackend)


def test_backends_satisfy_protocol():
    for name in available_backends():
        assert isinstance(backend_by_name(name), KernelBackend)


def test_unknown_backend_lists_known_names():
    with pytest.raises(KeyError, match="array"):
        backend_by_name("vectorised")


def test_vector_backend_unavailable_raises_clear_error(monkeypatch):
    """The vector backend stays registered but refuses to run when the
    numpy fast paths are unavailable (here: force-disabled)."""
    monkeypatch.setenv(backend_mod.DISABLE_ENV_VAR, "1")
    assert not vector_available()
    assert "vector" in available_backends()
    with pytest.raises(ImportError, match="numpy>=1.24"):
        simulate("tc", baseline_setup(), SimScale(8192), seed=SEED,
                 backend="vector")


def test_register_backend_rejects_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        backend_mod.register_backend("event", EventBackend())


def test_resolve_backend_priority(monkeypatch):
    monkeypatch.delenv(backend_mod.ENV_VAR, raising=False)
    assert resolve_backend(None).name == "event"
    assert resolve_backend("array").name == "array"
    custom = EventBackend()
    assert resolve_backend(custom) is custom
    monkeypatch.setenv(backend_mod.ENV_VAR, "array")
    assert default_backend_name() == "array"
    assert resolve_backend(None).name == "array"
    # An explicit argument still beats the environment.
    assert resolve_backend("event").name == "event"


def test_malformed_backend_env_warns_and_defaults(monkeypatch):
    monkeypatch.setenv(backend_mod.ENV_VAR, "definitely-not-a-backend")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert default_backend_name() == "event"
    assert any("REPRO_KERNEL_BACKEND" in str(w.message) for w in caught)


def test_simulate_stamps_backend_metadata(monkeypatch):
    monkeypatch.delenv(backend_mod.ENV_VAR, raising=False)
    result = simulate("tc", baseline_setup(), SimScale(8192), seed=SEED,
                      backend="array")
    assert result.backend == "array"
    result = simulate("tc", baseline_setup(), SimScale(8192), seed=SEED)
    assert result.backend == "event"


def test_backend_recorded_in_metrics_snapshot(monkeypatch):
    monkeypatch.setenv("REPRO_METRICS", "1")
    result = simulate("tc", baseline_setup(), SimScale(8192), seed=SEED,
                      backend="array")
    assert result.metrics is not None
    assert any(key.startswith("sim.backend.array")
               for key in result.metrics)


# ----------------------------------------------------------------------
# Bit-identity across every mitigation family
# ----------------------------------------------------------------------
def _tracker_setup(name: str, make) -> MitigationSetup:
    """An ad-hoc setup around a (seed, subch, bank) tracker factory."""
    return MitigationSetup(name=name, tracker_factory=make)


def _trr(seed, subch, bank):
    from repro.mitigations.trr import TrrTracker
    return TrrTracker(entries=28, refs_per_mitigation=4)


def _para(seed, subch, bank):
    from repro.mitigations.para import ParaTracker
    return ParaTracker(1.0 / 16, rng=_bank_rng(seed, subch, bank))


def _mithril(seed, subch, bank):
    from repro.mitigations.mithril import MithrilTracker
    return MithrilTracker(entries=2048)


def _qprac(seed, subch, bank):
    from repro.mitigations.qprac import QpracTracker
    return QpracTracker(1000)


def _hydra(seed, subch, bank):
    from repro.mitigations.hydra import HydraTracker
    return HydraTracker()


def _pride(seed, subch, bank):
    from repro.mitigations.pride import PrideTracker
    return PrideTracker(rng=_bank_rng(seed, subch, bank))


def _protrr(seed, subch, bank):
    from repro.mitigations.protrr import ProTrrTracker
    return ProTrrTracker(entries=2048)


MITIGATIONS = {
    "baseline": lambda: baseline_setup(),
    "trr": lambda: _tracker_setup("trr", _trr),
    "para": lambda: _tracker_setup("para", _para),
    "mithril": lambda: _tracker_setup("mithril", _mithril),
    "mint-rfm-1000": lambda: mint_rfm_setup(1000),
    "prac-1000": lambda: prac_setup(1000),
    "qprac-1000": lambda: _tracker_setup("qprac-1000", _qprac),
    "hydra": lambda: _tracker_setup("hydra", _hydra),
    "pride": lambda: _tracker_setup("pride", _pride),
    "protrr": lambda: _tracker_setup("protrr", _protrr),
    "naive-mirza": lambda: naive_mirza_setup(12),
    "mirza-1000": lambda: mirza_setup(1000, SCALE),
    "mist-1000": lambda: mist_setup(1000),
}


def _observed(result) -> dict:
    """Every deterministic observable of a run (goldens' field set)."""
    return {
        "total_requests": result.total_requests,
        "total_activations": result.total_activations,
        "row_hit_rate": round(result.row_hit_rate, 9),
        "alerts": result.alerts,
        "rfms": result.rfms,
        "mitigations": result.mitigations,
        "victim_rows_refreshed": result.victim_rows_refreshed,
        "demand_rows_refreshed": result.demand_rows_refreshed,
        "max_unmitigated_acts": result.max_unmitigated_acts,
        "ipc": [round(x, 9) for x in result.ipc],
        "bus_utilization": round(result.bus_utilization, 9),
    }


_EVENT_RESULTS: dict = {}
"""Per-mitigation event-backend observables, computed once and shared
by every fast backend's identity check."""


def _event_observed(name: str) -> dict:
    cached = _EVENT_RESULTS.get(name)
    if cached is None:
        setup = MITIGATIONS[name]()
        cached = _observed(
            simulate("tc", setup, SCALE, seed=SEED, backend="event"))
        _EVENT_RESULTS[name] = cached
    return cached


@pytest.mark.parametrize("backend", FAST_BACKENDS)
@pytest.mark.parametrize("name", sorted(MITIGATIONS), ids=lambda v: v)
def test_fast_backend_bit_identical(name: str, backend: str) -> None:
    event = _event_observed(name)
    setup = MITIGATIONS[name]()  # fresh factories, fresh RNG state
    fast = simulate("tc", setup, SCALE, seed=SEED, backend=backend)
    assert event == _observed(fast), (
        f"{name}: {backend} backend diverged from the event backend")


@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_fast_backend_identical_under_attack_pressure(backend) -> None:
    """A hammering workload forces real ALERT/RFM traffic through the
    deferral machinery (the benign 'tc' cells above barely alert)."""
    from repro.cpu.trace import TraceEntry
    from repro.params import ns
    from repro.workloads import AttackWorkload

    def hammer():
        rng = random.Random(13)
        rows = [rng.randrange(4096) for _ in range(24)]
        compute = ns(0.25)
        while True:
            for row in rows:
                yield TraceEntry(compute_ps=compute, instructions=1,
                                 subchannel=0, bank=0, row=row)

    from repro.cpu.system import MultiCoreSystem
    from repro.params import SystemConfig

    def build():
        workload = AttackWorkload({0: hammer, 1: hammer}, mlp=4)
        setup = mirza_setup(1000, SCALE)
        config = SystemConfig()
        return MultiCoreSystem(
            config,
            trace_factory=workload.trace_factory(),
            tracker_factory=lambda s, b: setup.tracker_factory(SEED, s, b),
            mapping_factory=lambda: setup.make_mapping(config),
            refs_per_window=SCALE.scaled_refs_per_window(config.timings),
            mlp=workload.mlp)

    window = SCALE.scaled_trefw(SystemConfig().timings)
    event = EventBackend().run(build(), window)
    fast = backend_by_name(backend).run(build(), window)
    assert fast.alerts != [0, 0] or fast.mitigations > 0, (
        "attack failed to exercise the ALERT path; strengthen it")
    assert _observed(event) == _observed(fast)


# ----------------------------------------------------------------------
# Serial vs pool under the fast backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", FAST_BACKENDS)
def test_fast_backend_serial_vs_pool_identical(monkeypatch, backend):
    from repro.sim.session import SimJob, SimSession

    monkeypatch.setenv(backend_mod.ENV_VAR, backend)
    scale = SimScale(4096)
    jobs = [SimJob("tc", prac_setup(1000), scale, SEED),
            SimJob("mcf", mirza_setup(1000, scale), scale, SEED)]
    serial = SimSession(disk_cache=False, max_workers=1).run_many(jobs)
    pooled = SimSession(disk_cache=False, max_workers=2).run_many(jobs)
    for s, p in zip(serial, pooled):
        assert _observed(s) == _observed(p)
        assert s.backend == backend
        assert p.backend == backend
