"""Tests for the named mitigation-setup registry."""

import pytest

from repro.params import SimScale
from repro.sim.registry import (
    _REGISTRY,
    available_setups,
    register_setup,
    setup_by_name,
)
from repro.sim.runner import MINT_RFM_WINDOWS, baseline_setup


class TestCatalogue:
    def test_paper_configurations_are_registered(self):
        names = available_setups()
        assert "baseline" in names
        for trhd in (500, 1000, 2000):
            for family in ("prac", "mint-rfm", "naive-mirza", "mist",
                           "mirza"):
                assert f"{family}-{trhd}" in names

    def test_baseline_matches_constructor(self):
        assert setup_by_name("baseline") == baseline_setup()

    def test_mirza_uses_strided_mapping(self):
        assert setup_by_name("mirza-1000").mapping == "strided"

    def test_mirza_threshold_scales_with_the_window(self):
        mild = setup_by_name("mirza-1000", SimScale(64))
        deep = setup_by_name("mirza-1000", SimScale(2048))
        assert mild != deep  # the scaled FTH differs

    def test_prac_uses_prac_timings(self):
        assert setup_by_name("prac-1000").use_prac_timings

    def test_mint_rfm_window_matches_threshold(self):
        setup = setup_by_name("mint-rfm-500")
        assert setup.rfm_bat == MINT_RFM_WINDOWS[500]


class TestRegistration:
    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="baseline"):
            setup_by_name("definitely-not-a-setup")

    def test_duplicate_registration_refused(self):
        with pytest.raises(ValueError, match="already registered"):
            register_setup("baseline", lambda scale: baseline_setup())

    def test_replace_flag_allows_override(self):
        original = _REGISTRY["baseline"]
        try:
            register_setup("baseline",
                           lambda scale: baseline_setup(),
                           replace=True)
            assert setup_by_name("baseline") == baseline_setup()
        finally:
            _REGISTRY["baseline"] = original

    def test_new_name_registers_and_resolves(self):
        try:
            register_setup("test-only",
                           lambda scale: baseline_setup())
            assert setup_by_name("test-only") == baseline_setup()
            assert "test-only" in available_setups()
        finally:
            _REGISTRY.pop("test-only", None)
