"""Tests for the stats/table helpers."""

import random

import pytest

from repro.sim import stats as stats_mod
from repro.sim.stats import (
    format_table,
    geometric_mean,
    histogram,
    mean,
    percentile,
    std,
)


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty(self):
        assert mean([]) == 0.0

    def test_generator_input(self):
        assert mean(x for x in (2.0, 4.0)) == 3.0


class TestStd:
    def test_constant_is_zero(self):
        assert std([5, 5, 5]) == 0.0

    def test_known_value(self):
        assert std([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)

    def test_short_input(self):
        assert std([1]) == 0.0


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_ignores_non_positive(self):
        assert geometric_mean([0, -1, 4]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0


class TestPercentile:
    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_endpoints(self):
        data = [7, 1, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 7

    def test_matches_numpy_linear_method(self):
        # numpy.percentile([10, 20, 30, 40], 25) == 17.5
        assert percentile([10, 20, 30, 40], 25) == pytest.approx(17.5)

    def test_empty_and_singleton(self):
        assert percentile([], 50) == 0.0
        assert percentile([42], 99) == 42

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestHistogram:
    def test_counts_cover_all_values(self):
        counts, edges = histogram([1, 2, 3, 4, 5], bins=4)
        assert sum(counts) == 5
        assert len(edges) == 5
        assert edges[0] == 1 and edges[-1] == 5

    def test_interior_edge_lands_in_higher_bin(self):
        counts, _ = histogram([0, 5, 10], bins=2)
        assert counts == [1, 2]  # 5 belongs to [5, 10], not [0, 5)

    def test_max_value_stays_in_last_bin(self):
        counts, _ = histogram([0, 10], bins=10)
        assert counts[-1] == 1

    def test_empty_input(self):
        counts, edges = histogram([], bins=3)
        assert counts == [0, 0, 0]
        assert edges == pytest.approx([0, 1 / 3, 2 / 3, 1])

    def test_constant_input(self):
        counts, edges = histogram([4, 4, 4], bins=2)
        assert sum(counts) == 3
        assert edges[0] == 4

    def test_invalid_bins_raises(self):
        with pytest.raises(ValueError):
            histogram([1], bins=0)


@pytest.mark.skipif(stats_mod._np is None, reason="needs numpy")
class TestNumpyFallbackEquivalence:
    """The numpy-delegated and pure-Python paths must agree exactly."""

    def test_percentile_paths_agree(self, monkeypatch):
        rng = random.Random(5)
        for _ in range(20):
            data = [rng.uniform(-50, 50)
                    for _ in range(rng.randrange(1, 40))]
            p = rng.uniform(0, 100)
            with_numpy = percentile(data, p)
            monkeypatch.setattr(stats_mod, "_np", None)
            without = percentile(data, p)
            monkeypatch.undo()
            assert without == pytest.approx(with_numpy, abs=1e-9)

    def test_histogram_paths_agree(self, monkeypatch):
        rng = random.Random(9)
        for _ in range(20):
            data = [rng.uniform(0, 100)
                    for _ in range(rng.randrange(2, 60))]
            bins = rng.randrange(1, 12)
            counts_np, edges_np = histogram(data, bins)
            monkeypatch.setattr(stats_mod, "_np", None)
            counts_py, edges_py = histogram(data, bins)
            monkeypatch.undo()
            assert counts_py == counts_np
            assert edges_py == pytest.approx(edges_np)

    def test_empty_and_constant_inputs_agree(self, monkeypatch):
        for data in ([], [4.0, 4.0, 4.0]):
            with_numpy = histogram(data, bins=3)
            monkeypatch.setattr(stats_mod, "_np", None)
            without = histogram(data, bins=3)
            monkeypatch.undo()
            assert without == with_numpy


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 10_000.0]],
                           title="T")
        assert out.startswith("T\n")
        assert "a" in out and "bb" in out
        assert "2.500" in out
        assert "10,000" in out

    def test_column_alignment(self):
        out = format_table(["col"], [["value"], ["x"]])
        lines = out.splitlines()
        assert len({len(line) for line in lines if "|" not in line}) <= 2

    def test_float_formats(self):
        out = format_table(["v"], [[0.0], [12.34], [3.14159]])
        assert "0" in out
        assert "12.3" in out
        assert "3.142" in out

    def test_negative_zero_renders_as_zero(self):
        # -0.0004 formats as "-0.000" at three decimals; it must
        # surface as plain "0", and so must exact -0.0.
        out = format_table(["v"], [[-0.0004], [-0.0]])
        assert "-0" not in out
        for line in out.splitlines()[2:]:
            assert line.strip() == "0"
