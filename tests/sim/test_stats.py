"""Tests for the stats/table helpers."""

import pytest

from repro.sim.stats import format_table, geometric_mean, mean, std


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty(self):
        assert mean([]) == 0.0

    def test_generator_input(self):
        assert mean(x for x in (2.0, 4.0)) == 3.0


class TestStd:
    def test_constant_is_zero(self):
        assert std([5, 5, 5]) == 0.0

    def test_known_value(self):
        assert std([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)

    def test_short_input(self):
        assert std([1]) == 0.0


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_ignores_non_positive(self):
        assert geometric_mean([0, -1, 4]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 10_000.0]],
                           title="T")
        assert out.startswith("T\n")
        assert "a" in out and "bb" in out
        assert "2.500" in out
        assert "10,000" in out

    def test_column_alignment(self):
        out = format_table(["col"], [["value"], ["x"]])
        lines = out.splitlines()
        assert len({len(line) for line in lines if "|" not in line}) <= 2

    def test_float_formats(self):
        out = format_table(["v"], [[0.0], [12.34], [3.14159]])
        assert "0" in out
        assert "12.3" in out
        assert "3.142" in out
