"""Tests for fault-tolerant batch execution.

Covers the failure paths of :meth:`SimSession.run_many`: poisoned
jobs under both failure policies, ``BrokenProcessPool`` recovery and
the serial fallback, per-job timeouts, retry determinism, resuming a
crashed batch from the disk cache, and the defensive environment-knob
parsing.

The job classes are module-level dataclasses so worker processes can
unpickle them by reference.
"""

import dataclasses
import os
import time

import pytest

import repro._env as _env
from repro.params import SimScale
from repro.sim.runner import baseline_setup, mirza_setup, prac_setup
from repro.sim.session import (
    FailurePolicy,
    JobFailed,
    JobFailure,
    SimJob,
    SimSession,
    fault_roll,
    is_failure,
    job_token,
    register_job_type,
)

SCALE = SimScale(4096)  # ~8 us windows: failure-path smoke speed


@dataclasses.dataclass(frozen=True)
class OkJob:
    """A trivially-successful content-hashable job."""

    key: int

    def execute(self):
        return self.key * 2


@dataclasses.dataclass(frozen=True)
class BoomJob:
    """A deterministically-poisoned job."""

    key: int

    def execute(self):
        raise RuntimeError(f"boom {self.key}")


@dataclasses.dataclass(frozen=True)
class FlakyJob:
    """Fails until ``marker`` exists, then succeeds: a transient fault
    observable across processes."""

    key: int
    marker: str

    def execute(self):
        if os.path.exists(self.marker):
            return f"healed {self.key}"
        open(self.marker, "w").close()
        raise OSError("transient")


@dataclasses.dataclass(frozen=True)
class CrashOnceJob:
    """Kills its worker process outright on the first execution (the
    OOM-kill analogue -> ``BrokenProcessPool``), succeeds afterwards."""

    marker: str

    def execute(self):
        if os.path.exists(self.marker):
            return "recovered"
        open(self.marker, "w").close()
        os._exit(1)


@dataclasses.dataclass(frozen=True)
class SleepJob:
    """Sleeps long enough to trip any sub-second per-job timeout."""

    key: int
    seconds: float

    def execute(self):
        time.sleep(self.seconds)
        return "slept"


# JSON-trivial results: identity codecs make the toy jobs disk-cacheable.
for _job_type in (OkJob, FlakyJob, CrashOnceJob, SleepJob):
    register_job_type(_job_type, lambda r: r, lambda p: p)


class TestKeepGoing:
    def test_siblings_survive_a_poisoned_job(self):
        session = SimSession(disk_cache=False)
        results = session.run_many(
            [OkJob(1), BoomJob(2), OkJob(3)],
            policy="keep_going", max_retries=0)
        assert results[0] == 2 and results[2] == 6
        failure = results[1]
        assert is_failure(failure)
        assert failure.error_type == "RuntimeError"
        assert failure.message == "boom 2"
        assert failure.attempts == 1
        assert not failure.timed_out

    def test_pool_siblings_survive_and_are_cached(self, tmp_path):
        session = SimSession(cache_dir=str(tmp_path))
        results = session.run_many(
            [OkJob(1), BoomJob(2), OkJob(3), OkJob(4)],
            max_workers=4, policy="keep_going", max_retries=0)
        assert [r for r in results if not is_failure(r)] == [2, 6, 8]
        assert sum(1 for r in results if is_failure(r)) == 1
        # Completed siblings were persisted as they finished.
        for job in (OkJob(1), OkJob(3), OkJob(4)):
            assert os.path.exists(
                session._entry_path(job_token(job)))

    def test_policy_strings_and_enum_are_equivalent(self):
        for policy in ("keep_going", "keep-going",
                       FailurePolicy.KEEP_GOING):
            session = SimSession(disk_cache=False,
                                 failure_policy=policy)
            assert session.failure_policy is FailurePolicy.KEEP_GOING

    def test_batch_stats_count_failures(self):
        session = SimSession(disk_cache=False)
        session.run_many([OkJob(1), BoomJob(2)],
                         policy="keep_going", max_retries=2)
        batch = session.last_batch
        assert batch.computed == 1
        assert batch.failed == 1
        assert batch.retried == 2  # both retries burned on the boom
        assert batch.timed_out == 0
        assert session.stats["failed"] == 1
        assert session.stats["retried"] == 2


class TestFailFast:
    def test_raises_after_storing_completed_siblings(self, tmp_path):
        session = SimSession(cache_dir=str(tmp_path))
        with pytest.raises(JobFailed) as excinfo:
            session.run_many([OkJob(1), BoomJob(2), OkJob(3)],
                             max_retries=0)
        assert isinstance(excinfo.value.failure, JobFailure)
        assert excinfo.value.failure.error_type == "RuntimeError"
        # The batch finished harvesting before raising: both siblings
        # are in the memory and disk caches, so a rerun resumes.
        for job in (OkJob(1), OkJob(3)):
            token = job_token(job)
            assert token in session._memory
            assert os.path.exists(session._entry_path(token))

    def test_fail_fast_is_the_library_default(self):
        session = SimSession(disk_cache=False)
        assert session.failure_policy is FailurePolicy.FAIL_FAST
        with pytest.raises(JobFailed):
            session.run_many([BoomJob(1)], max_retries=0)

    def test_untokened_failure_respects_policy(self):
        setup = dataclasses.replace(
            baseline_setup(),
            tracker_factory=lambda seed, subch, bank: 1 / 0)
        job = SimJob("tc", setup, SCALE)
        assert job_token(job) is None
        session = SimSession(disk_cache=False)
        with pytest.raises(JobFailed):
            session.run_many([job], max_retries=0)
        results = session.run_many([job], policy="keep_going",
                                   max_retries=0)
        assert is_failure(results[0])
        assert results[0].token is None


class TestRetries:
    def test_transient_failure_heals_on_retry(self, tmp_path):
        marker = str(tmp_path / "marker")
        session = SimSession(disk_cache=False)
        result = session.run_many([FlakyJob(1, marker)],
                                  max_retries=1)[0]
        assert result == "healed 1"
        assert session.last_batch.retried == 1
        assert session.last_batch.failed == 0

    def test_zero_retries_fails_transients(self, tmp_path):
        marker = str(tmp_path / "marker")
        session = SimSession(disk_cache=False)
        results = session.run_many([FlakyJob(1, marker)],
                                   policy="keep_going", max_retries=0)
        assert is_failure(results[0])

    def test_injected_faults_heal_and_results_are_bit_identical(
            self, monkeypatch):
        jobs = [SimJob("tc", setup, SCALE)
                for setup in (baseline_setup(), prac_setup(1000),
                              mirza_setup(1000, SCALE))]
        clean = SimSession(disk_cache=False).run_many(jobs)
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        session = SimSession(disk_cache=False)
        faulted = session.run_many(jobs, max_workers=2, max_retries=1)
        # Every job faulted once (rate 1.0) and retried to completion;
        # a retried job re-executes the same pure content, so the
        # batch is bit-identical to the clean serial run.
        assert faulted == clean
        assert session.last_batch.retried == 3
        assert session.last_batch.failed == 0

    def test_fault_roll_is_deterministic_and_seeded(self, monkeypatch):
        job = SimJob("tc", baseline_setup(), SCALE)
        assert fault_roll(job) == fault_roll(job)
        first = fault_roll(job)
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        assert fault_roll(job) != first


class TestBrokenPoolRecovery:
    def test_crashed_worker_pool_is_rebuilt(self, tmp_path):
        marker = str(tmp_path / "crashed")
        session = SimSession(disk_cache=False)
        results = session.run_many(
            [OkJob(1), CrashOnceJob(marker), OkJob(2)],
            max_workers=2, policy="keep_going", max_retries=1)
        assert results == [2, "recovered", 4]

    def test_persistently_broken_pool_falls_back_to_serial(
            self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        class AlwaysBrokenPool:
            def __init__(self, *args, **kwargs):
                pass

            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("worker died")

            def shutdown(self, *args, **kwargs):
                pass

        session = SimSession(disk_cache=False)
        monkeypatch.setattr(session, "_make_pool",
                            lambda workers: AlwaysBrokenPool())
        results = session.run_many([OkJob(1), OkJob(2), OkJob(3)],
                                   max_workers=2)
        assert results == [2, 4, 6]  # computed in-process


class TestTimeout:
    def test_stuck_job_times_out_and_siblings_complete(self):
        session = SimSession(disk_cache=False)
        results = session.run_many(
            [SleepJob(1, 3.0), OkJob(2)],
            max_workers=2, policy="keep_going",
            max_retries=0, job_timeout=0.3)
        assert is_failure(results[0])
        assert results[0].timed_out
        assert results[0].error_type == "TimeoutError"
        assert results[1] == 4
        assert session.last_batch.timed_out == 1

    def test_serial_execution_ignores_the_timeout(self):
        session = SimSession(disk_cache=False)
        results = session.run_many([SleepJob(1, 0.05)],
                                   job_timeout=0.001)
        assert results == ["slept"]


class TestCacheResume:
    def test_rerun_after_failures_serves_siblings_from_disk(
            self, tmp_path):
        crashed = SimSession(cache_dir=str(tmp_path))
        crashed.run_many([OkJob(1), BoomJob(2), OkJob(3)],
                         policy="keep_going", max_retries=0)
        resumed = SimSession(cache_dir=str(tmp_path))
        results = resumed.run_many([OkJob(1), OkJob(3)])
        assert results == [2, 6]
        assert resumed.stats["disk_hits"] == 2
        assert resumed.last_batch.computed == 0

    def test_slowdowns_surface_failures_per_pair(self, monkeypatch):
        # Fault every first attempt; with no retry budget each pair's
        # slot degrades to its JobFailure, and with the default budget
        # the identical sweep heals (failures are never cached).
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        session = SimSession(disk_cache=False)
        with monkeypatch.context() as patch:
            patch.setenv("REPRO_MAX_RETRIES", "0")
            pairs = session.slowdowns(
                [SimJob("tc", mirza_setup(1000, SCALE), SCALE)],
                policy="keep_going")
            assert is_failure(pairs[0])
        pairs = session.slowdowns(
            [SimJob("tc", mirza_setup(1000, SCALE), SCALE)],
            policy="keep_going")
        slowdown, result = pairs[0]
        assert isinstance(slowdown, float)


class TestDiskWriteHardening:
    def test_unserializable_payload_degrades_to_memory_only(
            self, tmp_path):
        from repro.sim.session import register_job_type, _CODECS

        @dataclasses.dataclass(frozen=True)
        class OpaqueResultJob:
            key: int

            def execute(self):
                return object()  # not JSON-serializable

        register_job_type(OpaqueResultJob, lambda r: r, lambda p: p)
        try:
            session = SimSession(cache_dir=str(tmp_path))
            with pytest.warns(UserWarning,
                              match="not JSON-serializable"):
                result = session.run(OpaqueResultJob(1))
            assert result is not None
            # No partial tmp file leaked, nothing persisted.
            leftovers = [name for _, _, names in os.walk(tmp_path)
                         for name in names]
            assert leftovers == []
            # The job type degraded to memory-only: the next store
            # does not attempt (or warn about) a disk write.
            assert OpaqueResultJob in session._disk_disabled
            assert session.run(OpaqueResultJob(1)) is result
        finally:
            _CODECS.pop(OpaqueResultJob, None)

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path):
        session = SimSession(cache_dir=str(tmp_path))
        session.run(OkJob(1))
        token = job_token(OkJob(1))
        orphan = session._entry_path(token) + ".tmp.99999"
        open(orphan, "w").close()
        session.clear(disk=True)
        assert not os.path.exists(orphan)
        assert not os.path.exists(session._entry_path(token))


class TestEnvKnobs:
    def test_repro_jobs_auto_means_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "auto")
        session = SimSession(disk_cache=False)
        assert session._effective_workers(None, 128) \
            == (os.cpu_count() or 1)

    def test_malformed_repro_jobs_warns_and_defaults(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many!")
        _env._WARNED.clear()
        session = SimSession(disk_cache=False)
        with pytest.warns(UserWarning, match="REPRO_JOBS"):
            assert session._effective_workers(None, 128) == 1

    def test_malformed_workload_cache_warns_and_defaults(
            self, monkeypatch):
        from repro.sim.runner import _workload_cache_cap
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "x")
        _env._WARNED.clear()
        with pytest.warns(UserWarning, match="REPRO_WORKLOAD_CACHE"):
            assert _workload_cache_cap() == 64

    def test_malformed_fault_rate_warns_and_stays_off(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "lots")
        _env._WARNED.clear()
        session = SimSession(disk_cache=False)
        with pytest.warns(UserWarning, match="REPRO_FAULT_RATE"):
            assert session.run_many([OkJob(1)]) == [2]

    def test_warning_fires_once_per_value(self, monkeypatch):
        import warnings as warnings_module
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "y")
        _env._WARNED.clear()
        from repro.sim.runner import _workload_cache_cap
        with pytest.warns(UserWarning):
            _workload_cache_cap()
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert _workload_cache_cap() == 64  # silent second parse


class TestObservabilityCounters:
    def test_failures_count_into_the_metrics_registry(self):
        from repro.obs import metrics as obs_metrics
        registry = obs_metrics.MetricsRegistry()
        previous = obs_metrics.install(registry)
        try:
            session = SimSession(disk_cache=False)
            session.run_many([OkJob(1), BoomJob(2)],
                             policy="keep_going", max_retries=1)
        finally:
            obs_metrics.install(previous)
        snapshot = registry.snapshot()
        assert snapshot["session.jobs_failed"]["value"] == 1
        assert snapshot["session.jobs_retried"]["value"] == 1
        assert "session.jobs_timed_out" not in snapshot
