"""Seeded randomized equivalence of every vectorized bulk path.

Each test drives identical random ACT streams through the per-event
loop of a component and through its numpy bulk path and demands exact
state equality -- the unit-level half of the vector backend's
bit-identity contract (the system-level half is the 13-mitigation
sweep in ``test_backend.py``).
"""

from __future__ import annotations

import random

import pytest

from repro.sim.backend import vector_available

pytestmark = pytest.mark.skipif(
    not vector_available(),
    reason="vector fast paths need numpy>=1.24")

np = pytest.importorskip("numpy")

from repro.core.mint import MintSampler               # noqa: E402
from repro.core.mirza import MirzaTracker             # noqa: E402
from repro.core.config import MirzaConfig             # noqa: E402
from repro.core.rct import RegionCountTable, ResetPolicy  # noqa: E402
from repro.cpu.trace import chunk_entries             # noqa: E402
from repro.dram.bank import Bank, RowActivationOracle  # noqa: E402
from repro.dram.mapping import SequentialR2SA, StridedR2SA  # noqa: E402
from repro.dram.refresh import RefreshSlice           # noqa: E402
from repro.mitigations.base import MitigationSlotSource  # noqa: E402
from repro.mitigations.mint_rfm import MintTracker    # noqa: E402
from repro.mitigations.prac import PracTracker        # noqa: E402
from repro.params import DramGeometry                 # noqa: E402


def _random_runs(seed: int, runs: int, run_len, row_space: int,
                 hot_rows: int = 8, hot_fraction: float = 0.6):
    """Random ACT runs mixing a hot set (attack-like) with cold rows."""
    rng = random.Random(seed)
    hot = [rng.randrange(row_space) for _ in range(hot_rows)]
    out = []
    for _ in range(runs):
        n = run_len if isinstance(run_len, int) \
            else rng.randrange(*run_len)
        run = [hot[rng.randrange(hot_rows)]
               if rng.random() < hot_fraction
               else rng.randrange(row_space)
               for _ in range(n)]
        out.append(run)
    return out


# ----------------------------------------------------------------------
# PRAC counters
# ----------------------------------------------------------------------
def _prac_state(t: PracTracker):
    return (t._counters, t._over_threshold, t._max_count,
            t.alert_slack(), t.wants_alert())


@pytest.mark.parametrize("seed", range(5))
def test_prac_array_path_matches_scalar(seed):
    scalar = PracTracker(200)
    vector = PracTracker(200)
    for i, run in enumerate(_random_runs(seed, 12, (1, 400), 512)):
        for row in run:
            scalar.on_activate(row, now_ps=0)
        vector.on_activates_array(
            np.asarray(run, dtype=np.int64),
            np.zeros(len(run), dtype=np.int64))
        assert _prac_state(scalar) == _prac_state(vector)
        # Interleave the mitigation/REF events that reset counters.
        if i % 3 == 0:
            assert (scalar.on_mitigation_slot(
                        0, MitigationSlotSource.ALERT)
                    == vector.on_mitigation_slot(
                        0, MitigationSlotSource.ALERT))
        if i % 4 == 0:
            slice_ = RefreshSlice(ref_index=i, physical_start=0,
                                  physical_end=64,
                                  logical_rows=list(range(64)))
            scalar.on_ref_slice(slice_, now_ps=0)
            vector.on_ref_slice(slice_, now_ps=0)
        assert _prac_state(scalar) == _prac_state(vector)


# ----------------------------------------------------------------------
# MINT sampler
# ----------------------------------------------------------------------
def _sampler_state(s: MintSampler):
    return (s._position, s._target, s.windows_completed, s.observed,
            s.selected)


@pytest.mark.parametrize("seed", range(5))
def test_mint_observe_many_matches_observe_on_arrays(seed):
    scalar = MintSampler(48, rng=random.Random(seed))
    vector = MintSampler(48, rng=random.Random(seed))
    for run in _random_runs(seed, 20, (1, 200), 4096):
        expected = [r for r in run if scalar.observe(r) is not None]
        got = vector.observe_many(np.asarray(run, dtype=np.int64))
        assert got == expected
        assert all(type(r) is int for r in got)
        assert _sampler_state(scalar) == _sampler_state(vector)


# ----------------------------------------------------------------------
# RCT escape decisions
# ----------------------------------------------------------------------
def _rct_state(t: RegionCountTable):
    return (t._counters, t._rrc, t._refreshing_region,
            t.filtered_acts, t.escaped_acts)


@pytest.mark.parametrize("seed", range(5))
def test_rct_array_path_matches_scalar(seed):
    geometry = DramGeometry()
    scalar = RegionCountTable(128, 32, geometry)
    vector = RegionCountTable(128, 32, geometry)
    rows_per_bank = geometry.rows_per_bank
    for run in _random_runs(seed, 12, (1, 500), rows_per_bank):
        expected = scalar.on_activates(run)
        got = vector.on_activates_array(np.asarray(run, dtype=np.int64))
        assert got is not None
        assert got.tolist() == expected
        assert _rct_state(scalar) == _rct_state(vector)


def test_rct_array_path_declines_edge_configs():
    """Sub-subarray regions need edge bumping: the vector path must
    signal fallback without touching any state."""
    geometry = DramGeometry()
    assert geometry.rows_per_bank // 256 < geometry.rows_per_subarray
    rct = RegionCountTable(256, 32, geometry)
    before = _rct_state(rct)
    assert rct.on_activates_array(
        np.asarray([1, 2, 3], dtype=np.int64)) is None
    assert _rct_state(rct) == before


def test_rct_array_path_declines_safe_sweep_in_flight():
    geometry = DramGeometry()
    rct = RegionCountTable(128, 32, geometry,
                           reset_policy=ResetPolicy.SAFE)
    # A slice that begins (but does not finish) region 0's sweep.
    rct.on_ref_slice(RefreshSlice(ref_index=0, physical_start=0,
                                  physical_end=10,
                                  logical_rows=list(range(10))))
    assert rct._refreshing_region == 0
    before = _rct_state(rct)
    assert rct.on_activates_array(
        np.asarray([1, 2, 3], dtype=np.int64)) is None
    assert _rct_state(rct) == before


# ----------------------------------------------------------------------
# Row-to-subarray mappings and refresh slices
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mapping_cls", [SequentialR2SA, StridedR2SA])
def test_mapping_array_views_match_scalar(mapping_cls):
    geometry = DramGeometry()
    mapping = mapping_cls(geometry)
    rng = random.Random(3)
    rows = [rng.randrange(geometry.rows_per_bank) for _ in range(500)]
    arr = np.asarray(rows, dtype=np.int64)
    assert (mapping.physical_indices_array(arr).tolist()
            == mapping.physical_indices(rows))
    start, end = 8192, 8192 + 1024
    assert (mapping.logical_rows_array(start, end).tolist()
            == mapping.logical_rows(start, end))


def test_refresh_slice_row_array_matches_logical_rows():
    slice_ = RefreshSlice(ref_index=0, physical_start=0, physical_end=8,
                          logical_rows=[5, 1, 9, 2, 5, 0, 7, 3])
    assert slice_.row_array().tolist() == slice_.logical_rows
    assert slice_.row_array() is slice_.row_array()  # cached


# ----------------------------------------------------------------------
# Oracle (and Bank bulk activate)
# ----------------------------------------------------------------------
def _oracle_state(o: RowActivationOracle):
    return (o._counts, o.max_unmitigated, o.max_row)


@pytest.mark.parametrize("seed", range(5))
def test_oracle_array_path_matches_scalar(seed):
    scalar = RowActivationOracle()
    vector = RowActivationOracle()
    for i, run in enumerate(_random_runs(seed, 12, (1, 300), 256)):
        scalar.on_activates(run)
        vector.on_activates_array(np.asarray(run, dtype=np.int64))
        assert _oracle_state(scalar) == _oracle_state(vector)
        if i % 3 == 0:
            swept = frozenset(range(0, 128))
            scalar.on_rows_refreshed(swept)
            vector.on_rows_refreshed(swept)
            assert _oracle_state(scalar) == _oracle_state(vector)


def test_oracle_array_path_max_row_tie_breaks_by_arrival():
    """Rows 1 and 2 both finish at count 2; row 1 got there first."""
    scalar = RowActivationOracle()
    vector = RowActivationOracle()
    rows = [1, 1, 2, 2, 1, 2]  # counts: 1->3, 2->3; 1 reaches 2 first
    scalar.on_activates(rows)
    vector.on_activates_array(np.asarray(rows, dtype=np.int64))
    assert _oracle_state(scalar) == _oracle_state(vector)
    assert vector.max_row == scalar.max_row


def test_bank_activate_many_array_matches_scalar():
    scalar = Bank(0)
    vector = Bank(0)
    rows = [7, 7, 9, 7, 12, 9]
    scalar.activate_many(rows)
    vector.activate_many_array(np.asarray(rows, dtype=np.int64))
    assert scalar.open_row == vector.open_row == 9
    assert type(vector.open_row) is int
    assert scalar.total_activations == vector.total_activations
    assert _oracle_state(scalar.oracle) == _oracle_state(vector.oracle)


def test_bank_activate_many_array_validates_eagerly():
    bank = Bank(0)
    bad = np.asarray([1, 2, bank.geometry.rows_per_bank], dtype=np.int64)
    with pytest.raises(ValueError, match="out of range"):
        bank.activate_many_array(bad)
    assert bank.total_activations == 0
    assert bank.oracle.max_unmitigated == 0


# ----------------------------------------------------------------------
# MINT tracker (DMQ) and the full MIRZA tracker
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(3))
def test_mint_tracker_array_path_matches_scalar(seed):
    scalar = MintTracker(24, dmq_entries=2, rng=random.Random(seed))
    vector = MintTracker(24, dmq_entries=2, rng=random.Random(seed))
    for i, run in enumerate(_random_runs(seed, 10, (1, 200), 1024)):
        for row in run:
            scalar.on_activate(row, now_ps=0)
        vector.on_activates_array(
            np.asarray(run, dtype=np.int64),
            np.zeros(len(run), dtype=np.int64))
        assert scalar._pending == vector._pending
        assert all(type(r) is int for r in vector._pending)
        assert scalar.dropped_selections == vector.dropped_selections
        if i % 2 == 0:
            assert (scalar.on_mitigation_slot(0, MitigationSlotSource.RFM)
                    == vector.on_mitigation_slot(
                        0, MitigationSlotSource.RFM))


def _mirza_state(t: MirzaTracker):
    return (dict(t.queue._entries), t.rct._counters, t.acts_observed,
            _sampler_state(t.mint), t.rct.filtered_acts,
            t.rct.escaped_acts, t.wants_alert())


@pytest.mark.parametrize("seed", range(3))
def test_mirza_tracker_array_path_matches_scalar(seed):
    config = MirzaConfig.paper_config(1000).scaled(2048)
    geometry = DramGeometry()

    def build():
        return MirzaTracker(config, geometry, StridedR2SA(geometry),
                            rng=random.Random(seed))

    scalar, vector = build(), build()
    runs = _random_runs(seed, 15, (1, 400), geometry.rows_per_bank,
                        hot_rows=4, hot_fraction=0.8)
    for i, run in enumerate(runs):
        times = list(range(len(run)))
        scalar.on_activates(run, times)
        vector.on_activates_array(np.asarray(run, dtype=np.int64),
                                  np.asarray(times, dtype=np.int64))
        assert _mirza_state(scalar) == _mirza_state(vector)
        assert all(type(r) is int for r in vector.queue._entries)
        if i % 3 == 0:
            assert (scalar.on_mitigation_slot(
                        0, MitigationSlotSource.ALERT)
                    == vector.on_mitigation_slot(
                        0, MitigationSlotSource.ALERT))
        if i % 4 == 0:
            slice_ = RefreshSlice(
                ref_index=i, physical_start=0, physical_end=1024,
                logical_rows=geometry_rows(geometry, 0, 1024))
            scalar.on_ref_slice(slice_, now_ps=0)
            vector.on_ref_slice(slice_, now_ps=0)
        assert _mirza_state(scalar) == _mirza_state(vector)


def geometry_rows(geometry, start, end):
    return StridedR2SA(geometry).logical_rows(start, end)


# ----------------------------------------------------------------------
# Structured-array chunk views
# ----------------------------------------------------------------------
def test_chunk_source_array_view_matches_tuples():
    from repro.cpu.trace import TraceEntry

    entries = [TraceEntry(compute_ps=10 * i, instructions=i,
                          subchannel=i % 2, bank=i % 32, row=i * 7)
               for i in range(100)]
    tuples = chunk_entries(iter(entries), size=32)
    arrays = chunk_entries(iter(entries), size=32)
    while True:
        chunk = tuples.next_chunk()
        arr = arrays.next_chunk_array()
        assert (chunk is None) == (arr is None)
        if chunk is None:
            break
        assert len(arr) == len(chunk)
        for field, idx in (("compute_ps", 0), ("instructions", 1),
                           ("subchannel", 2), ("bank", 3), ("row", 4)):
            assert arr[field].tolist() == [t[idx] for t in chunk]


def test_synthetic_chunk_arrays_match_tuple_chunks():
    from repro.workloads.specs import workload_by_name
    from repro.workloads.synthetic import SyntheticWorkload

    make = lambda: SyntheticWorkload(workload_by_name("tc"), seed=11)  # noqa: E731
    tuple_gen = make().trace_chunks(0)
    array_gen = make().trace_chunk_arrays(0)
    for _ in range(4):
        chunk = next(tuple_gen)
        arr = next(array_gen)
        assert arr["row"].tolist() == [t[4] for t in chunk]
        assert arr["bank"].tolist() == [t[3] for t in chunk]
