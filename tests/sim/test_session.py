"""Tests for the simulation session: hashing, caching, fan-out."""

import dataclasses

import pytest

from repro.params import SimScale, SystemConfig
from repro.sim.runner import (
    baseline_setup,
    mirza_setup,
    prac_setup,
    run_baseline,
)
from repro.sim.session import (
    SimJob,
    SimSession,
    describe,
    job_token,
    using_session,
)

SCALE = SimScale(2048)  # ~16 us windows: smoke-test speed


class TestJobToken:
    def test_equal_jobs_hash_identically(self):
        a = SimJob("tc", mirza_setup(1000, SCALE), SCALE, seed=3)
        b = SimJob("tc", mirza_setup(1000, SCALE), SCALE, seed=3)
        assert a is not b
        assert job_token(a) == job_token(b)
        assert job_token(a.resolved()) == job_token(b.resolved())

    def test_every_field_feeds_the_hash(self):
        base = SimJob("tc", mirza_setup(1000, SCALE), SCALE, seed=0)
        variants = [
            SimJob("cc", mirza_setup(1000, SCALE), SCALE, seed=0),
            SimJob("tc", mirza_setup(500, SCALE), SCALE, seed=0),
            SimJob("tc", mirza_setup(1000, SCALE), SimScale(4096),
                   seed=0),
            SimJob("tc", mirza_setup(1000, SCALE), SCALE, seed=1),
            SimJob("tc", mirza_setup(1000, SCALE), SCALE, seed=0,
                   config=SystemConfig(num_cores=4)),
        ]
        tokens = [job_token(v.resolved()) for v in variants]
        tokens.append(job_token(base.resolved()))
        assert len(set(tokens)) == len(tokens)

    def test_distinct_configs_never_collide(self):
        # Regression: the old run_baseline key hashed id(type(config)),
        # so *every* SystemConfig value shared one cache slot.
        a = SimJob("tc", baseline_setup(), SCALE,
                   config=SystemConfig())
        b = SimJob("tc", baseline_setup(), SCALE,
                   config=SystemConfig(num_cores=2))
        assert job_token(a) != job_token(b)

    def test_closure_setup_has_no_token(self):
        setup = dataclasses.replace(
            baseline_setup(),
            tracker_factory=lambda seed, subch, bank: None)
        job = SimJob("tc", setup, SCALE)
        assert job_token(job) is None

    def test_describe_rejects_arbitrary_objects(self):
        with pytest.raises(TypeError):
            describe(object())


class TestMemoryCache:
    def test_identical_jobs_computed_once(self):
        session = SimSession(disk_cache=False)
        job = SimJob("tc", baseline_setup(), SCALE)
        a = session.run(job)
        b = session.run(SimJob("tc", baseline_setup(), SCALE))
        assert a is b
        assert session.stats["misses"] == 1
        assert session.stats["memory_hits"] == 1

    def test_run_many_dedupes_within_batch(self):
        session = SimSession(disk_cache=False)
        job = SimJob("tc", baseline_setup(), SCALE)
        results = session.run_many([job, job, job])
        assert results[0] is results[1] is results[2]
        assert session.stats["misses"] == 1

    def test_closure_jobs_run_uncached(self):
        from repro.sim.runner import simulate
        session = SimSession(disk_cache=False)
        setup = prac_setup(1000)
        factory = setup.tracker_factory
        opaque = dataclasses.replace(
            setup,
            tracker_factory=lambda seed, subch, bank: factory(
                seed, subch, bank))
        result = session.run(SimJob("tc", opaque, SCALE))
        assert result == simulate("tc", setup, SCALE)
        assert session.stats["memory_hits"] == 0


class TestDiskCache:
    def test_round_trip_between_sessions(self, tmp_path):
        job = SimJob("tc", prac_setup(1000), SCALE)
        first = SimSession(cache_dir=str(tmp_path))
        computed = first.run(job)
        second = SimSession(cache_dir=str(tmp_path))
        restored = second.run(SimJob("tc", prac_setup(1000), SCALE))
        assert second.stats["disk_hits"] == 1
        assert second.stats["misses"] == 0
        assert restored == computed

    def test_corrupt_entry_recomputes(self, tmp_path):
        job = SimJob("tc", baseline_setup(), SCALE)
        session = SimSession(cache_dir=str(tmp_path))
        session.run(job)
        path = session._entry_path(job_token(job.resolved()))
        with open(path, "w") as handle:
            handle.write("{not json")
        fresh = SimSession(cache_dir=str(tmp_path))
        result = fresh.run(job)
        assert fresh.stats["misses"] == 1
        assert result == session.run(job)

    def test_disk_cache_off_writes_nothing(self, tmp_path):
        session = SimSession(cache_dir=str(tmp_path), disk_cache=False)
        session.run(SimJob("tc", baseline_setup(), SCALE))
        assert list(tmp_path.iterdir()) == []


class TestParallel:
    def test_parallel_equals_serial(self):
        jobs = [SimJob(name, setup, SCALE)
                for name in ("tc", "cc")
                for setup in (baseline_setup(),
                              mirza_setup(1000, SCALE))]
        serial = SimSession(disk_cache=False).run_many(jobs)
        parallel = SimSession(disk_cache=False).run_many(
            jobs, max_workers=2)
        assert serial == parallel

    def test_slowdowns_pair_jobs_with_their_baselines(self):
        session = SimSession(disk_cache=False)
        jobs = [SimJob("tc", mirza_setup(1000, SCALE), SCALE)]
        (slowdown, protected), = session.slowdowns(jobs)
        baseline = session.run(SimJob("tc", baseline_setup(), SCALE))
        assert slowdown == protected.slowdown_pct(baseline)
        # The baseline was computed inside the slowdowns() batch.
        assert session.stats["memory_hits"] >= 1


class TestBatchStats:
    def test_run_many_dedups_within_batch(self):
        session = SimSession(disk_cache=False)
        job = SimJob("tc", prac_setup(1000), SCALE)
        results = session.run_many([job, job, job])
        assert results[0] == results[1] == results[2]
        batch = session.last_batch
        assert batch.submitted == 3
        assert batch.unique == 1
        assert batch.deduplicated == 2
        assert batch.cache_hits == 0
        assert batch.computed == 1

    def test_second_batch_served_from_cache(self):
        session = SimSession(disk_cache=False)
        job = SimJob("tc", prac_setup(1000), SCALE)
        session.run_many([job])
        session.run_many([job])
        batch = session.last_batch
        assert batch.cache_hits == 1
        assert batch.computed == 0

    def test_slowdowns_share_one_baseline(self):
        # Two protected jobs over the same workload/scale/seed need
        # only a single unprotected baseline simulation between them.
        session = SimSession(disk_cache=False)
        jobs = [SimJob("tc", prac_setup(1000), SCALE),
                SimJob("tc", mirza_setup(1000, SCALE), SCALE)]
        pairs = session.slowdowns(jobs)
        assert len(pairs) == 2
        assert session.last_batch.submitted == 3  # 1 baseline + 2 jobs
        assert session.stats["baseline_dedup"] == 1

    def test_distinct_workloads_keep_distinct_baselines(self):
        session = SimSession(disk_cache=False)
        jobs = [SimJob("tc", prac_setup(1000), SCALE),
                SimJob("cc", prac_setup(1000), SCALE)]
        session.slowdowns(jobs)
        assert session.last_batch.submitted == 4  # 2 baselines + 2 jobs
        assert session.stats["baseline_dedup"] == 0


class TestDefaultSessionWrappers:
    def test_distinct_configs_get_distinct_baselines(self):
        # Regression for the id(type(config)) cache-key bug: baselines
        # for different SystemConfig values must not be conflated.
        with using_session(SimSession(disk_cache=False)):
            wide = run_baseline("tc", SCALE)
            narrow = run_baseline("tc", SCALE,
                                  config=SystemConfig(num_cores=2))
        assert len(wide.ipc) == 8
        assert len(narrow.ipc) == 2

    def test_using_session_scopes_and_restores(self):
        from repro.sim.session import get_default_session
        outer = get_default_session()
        scoped = SimSession(disk_cache=False)
        with using_session(scoped):
            assert get_default_session() is scoped
        assert get_default_session() is outer
