"""Tests for the opt-in kernel profiling layer."""

from __future__ import annotations

from repro import _profile as profile_impl
from repro.params import SimScale
from repro.sim.profile import (
    KernelProfile,
    active,
    enabled_by_env,
    install,
    maybe_profile_from_env,
    profiling,
)
from repro.sim.registry import setup_by_name
from repro.sim.runner import calibrated_workload, simulate


def test_inactive_by_default():
    assert active() is None
    assert profile_impl._ACTIVE is None


def test_profiling_scope_installs_and_restores():
    assert active() is None
    with profiling() as prof:
        assert active() is prof
        # The hot paths read the implementation module's slot directly.
        assert profile_impl._ACTIVE is prof
    assert active() is None


def test_profiling_nests():
    with profiling() as outer:
        with profiling() as inner:
            assert active() is inner
        assert active() is outer


def test_install_returns_previous():
    prof = KernelProfile()
    assert install(prof) is None
    try:
        assert active() is prof
    finally:
        assert install(None) is prof
    assert active() is None


def test_enabled_by_env(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    assert not enabled_by_env()
    for value in ("1", "true", "YES", " on "):
        monkeypatch.setenv("REPRO_PROFILE", value)
        assert enabled_by_env(), value
    for value in ("", "0", "false", "off"):
        monkeypatch.setenv("REPRO_PROFILE", value)
        assert not enabled_by_env(), value


def test_maybe_profile_from_env(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    with maybe_profile_from_env() as prof:
        assert prof is None
    with maybe_profile_from_env(force=True) as prof:
        assert prof is not None
    monkeypatch.setenv("REPRO_PROFILE", "1")
    with maybe_profile_from_env() as prof:
        assert prof is not None
    assert active() is None


def test_simulate_populates_profile():
    scale = SimScale(8192)
    # Warm the calibration cache so the profile covers exactly one run.
    calibrated_workload("mcf", scale, seed=0)
    with profiling() as prof:
        result = simulate("mcf", setup_by_name("mirza-1000"),
                          scale, seed=0)
    assert prof.runs == 1
    assert prof.requests == result.total_requests > 0
    assert prof.activations == result.total_activations > 0
    assert prof.refs > 0
    assert prof.wall_s > 0
    assert prof.serve_s > 0
    assert prof.trace_s > 0
    # Sub-phases are measured inside the serve window.
    assert prof.requests_per_sec() > 0
    assert prof.acts_per_sec() > 0


def test_profiling_does_not_change_results():
    scale = SimScale(8192)
    setup = setup_by_name("mirza-1000")
    plain = simulate("tc", setup, scale, seed=0)
    with profiling():
        profiled = simulate("tc", setup, scale, seed=0)
    assert profiled.total_requests == plain.total_requests
    assert profiled.total_activations == plain.total_activations
    assert profiled.ipc == plain.ipc


def test_report_renders_phases():
    prof = KernelProfile()
    prof.add_run(2.0, 10 ** 12, 1000, 600)
    prof.serve_s = 1.0
    prof.refresh_s = 0.25
    prof.trackers_s = 0.25
    prof.trace_s = 0.5
    prof.refs = 42
    text = prof.report()
    assert "trace generation" in text
    assert "controller scheduling" in text
    assert "demand refresh" in text
    assert "mitigation trackers" in text
    assert "500/s" in text  # 1000 requests / 2.0s wall
    assert "42" in text
