"""Integration tests: observability through simulate/session/CLI.

Covers the guarantees docs/observability.md promises: snapshots attach
to results, serial and process-pool runs produce identical metrics,
worker profiles merge into the parent, and the CLI emits valid
Perfetto traces.
"""

import json

import pytest

from repro import obs
from repro.obs.export import validate_chrome_trace
from repro.obs.metrics import merge_snapshots
from repro.params import SimScale
from repro.sim.registry import setup_by_name
from repro.sim.runner import mirza_setup, simulate
from repro.sim.session import SimJob, SimSession

SCALE = SimScale(2048)  # ~16 us windows: smoke-test speed


def _jobs():
    setup = setup_by_name("mirza", SCALE)
    return [SimJob(w, setup, SCALE, seed=0) for w in ("tc", "lbm")]


class TestSimulateAttachesObservability:
    def test_off_by_default(self):
        result = simulate("tc", mirza_setup(1000, SCALE), SCALE)
        assert result.metrics is None
        assert result.trace_events is None

    def test_metrics_and_trace_attach(self):
        with obs.collecting(metrics=True, trace=True):
            result = simulate("tc", mirza_setup(1000, SCALE), SCALE)
        assert result.metrics["mc.requests"]["value"] > 0
        assert result.metrics["mc.requests"]["value"] == \
            result.total_requests
        assert any(e[2] == "ACT" for e in result.trace_events)

    def test_env_knob_attaches_metrics(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        result = simulate("tc", mirza_setup(1000, SCALE), SCALE)
        assert result.metrics is not None
        assert result.trace_events is None

    def test_bank_acts_sum_to_total_activations(self):
        with obs.collecting(metrics=True):
            result = simulate("tc", mirza_setup(1000, SCALE), SCALE)
        acts = sum(v["value"] for k, v in result.metrics.items()
                   if k.startswith("dram.bank.acts{"))
        assert acts == result.total_activations

    def test_calibration_is_not_counted(self):
        # Two back-to-back collected runs must report identical
        # snapshots even though only the first calibrates (the probe
        # binds to no sink); a leak would skew whichever run pays it.
        with obs.collecting(metrics=True) as a:
            simulate("tc", mirza_setup(1000, SCALE), SCALE)
        with obs.collecting(metrics=True) as b:
            simulate("tc", mirza_setup(1000, SCALE), SCALE)
        assert a.metrics_snapshot() == b.metrics_snapshot()

    def test_trace_is_perfetto_valid(self):
        with obs.collecting(metrics=False, trace=True) as col:
            simulate("tc", mirza_setup(1000, SCALE), SCALE)
        events = col.trace_events()
        assert events
        from repro.obs.export import chrome_trace_events
        assert validate_chrome_trace(chrome_trace_events(events)) is None


class TestSessionAggregation:
    def _run(self, workers):
        with obs.collecting(metrics=True, trace=True) as col:
            session = SimSession(disk_cache=False, max_workers=workers)
            results = session.run_many(_jobs())
        return col, results

    def test_serial_and_pool_snapshots_identical(self):
        col1, res1 = self._run(1)
        col2, res2 = self._run(2)
        snap1, snap2 = col1.metrics_snapshot(), col2.metrics_snapshot()
        assert snap1 == snap2
        assert [r.metrics for r in res1] == [r.metrics for r in res2]
        assert sorted(map(tuple, col1.trace_events())) == \
            sorted(map(tuple, col2.trace_events()))

    def test_session_snapshot_equals_merged_results(self):
        col, results = self._run(2)
        merged = merge_snapshots([r.metrics for r in results])
        assert merged == col.metrics_snapshot()

    def test_pool_profiles_merge_into_parent(self):
        from repro.sim.profile import KernelProfile, profiling
        with profiling() as prof:
            session = SimSession(disk_cache=False, max_workers=2)
            session.run_many(_jobs())
        assert isinstance(prof, KernelProfile)
        assert prof.requests > 0  # counted in the workers
        assert prof.runs >= 2

    def test_cached_result_without_metrics_is_refreshed(self, tmp_path):
        session = SimSession(cache_dir=str(tmp_path), disk_cache=True,
                             max_workers=1)
        job = _jobs()[0]
        plain = session.run_many([job])[0]
        assert plain.metrics is None
        with obs.collecting(metrics=True):
            fresh = session.run_many([job])[0]
        assert fresh.metrics is not None
        # ... and a satisfying cached result is served as-is.
        with obs.collecting(metrics=True):
            cached = session.run_many([job])[0]
        assert cached.metrics == fresh.metrics


class TestProfileMergePrimitives:
    def test_to_from_dict_round_trip(self):
        from repro._profile import KernelProfile
        prof = KernelProfile()
        prof.requests = 7
        prof.wall_s = 1.5
        clone = KernelProfile.from_dict(prof.to_dict())
        assert clone.to_dict() == prof.to_dict()

    def test_merge_is_additive(self):
        from repro._profile import KernelProfile
        a, b = KernelProfile(), KernelProfile()
        a.requests = 2
        b.requests = 3
        a.merge(b)
        assert a.requests == 5
        a.merge(b.to_dict())
        assert a.requests == 8


class TestCliObservability:
    @pytest.fixture(autouse=True)
    def _fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIME_SCALE", "2048")

    def test_stats_prints_metrics_table(self, capsys):
        from repro.__main__ import main as cli_main
        assert cli_main(["stats", "tc", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert "dram.bank.acts" in out
        assert "mc.requests" in out
        assert "mc.latency_ps" in out

    def test_run_setup_trace_out_writes_valid_trace(self, tmp_path,
                                                    capsys):
        from repro.__main__ import main as cli_main
        target = tmp_path / "trace.json"
        assert cli_main(["run", "tc", "--setup", "mirza",
                         "--trace-out", str(target),
                         "--no-cache"]) == 0
        payload = json.loads(target.read_text())
        assert validate_chrome_trace(payload) is None
        lanes = {(e["pid"], e["tid"])
                 for e in payload["traceEvents"] if e["ph"] != "M"}
        assert len(lanes) > 2  # per-bank lanes, not one flat track

    def test_trace_subcommand_jsonl_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main
        from repro.obs.export import read_jsonl
        chrome = tmp_path / "trace.json"
        jsonl = tmp_path / "events.jsonl"
        assert cli_main(["trace", "tc", "--trace-out", str(chrome),
                         "--jsonl-out", str(jsonl),
                         "--no-cache"]) == 0
        events = read_jsonl(str(jsonl))
        assert events
        from repro.obs.export import chrome_trace_events
        assert validate_chrome_trace(chrome_trace_events(events)) is None

    def test_unknown_setup_fails_cleanly(self, capsys):
        from repro.__main__ import main as cli_main
        assert cli_main(["stats", "tc", "--setup", "nope"]) == 2
        assert "unknown setup" in capsys.readouterr().err


class TestCliSessionSpans:
    @pytest.fixture(autouse=True)
    def _fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIME_SCALE", "2048")

    def test_trace_out_carries_session_spans(self, tmp_path, capsys):
        from repro.__main__ import main as cli_main
        from repro.obs.export import SPAN_PIDS
        target = tmp_path / "trace.json"
        assert cli_main(["run", "tc", "lbm", "--setup", "mirza",
                         "--trace-out", str(target), "--jobs", "2",
                         "--no-cache"]) == 0
        payload = json.loads(target.read_text())
        assert validate_chrome_trace(payload) is None
        cells = [e for e in payload["traceEvents"]
                 if e.get("pid") == SPAN_PIDS["session"]
                 and e.get("ph") == "X"
                 and e["name"].startswith("cell:")]
        # Every executed cell appears exactly once, with a disposition.
        assert sorted(e["name"] for e in cells) == [
            "cell:lbm/mirza-1000", "cell:tc/mirza-1000"]
        assert all(e["args"]["disposition"] == "computed"
                   for e in cells)
        kernels = [e for e in payload["traceEvents"]
                   if e.get("pid") == SPAN_PIDS["worker"]
                   and e.get("ph") == "X"]
        assert len(kernels) == 2

    def test_stats_includes_session_gauges(self, capsys):
        from repro.__main__ import main as cli_main
        assert cli_main(["stats", "tc", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "session.cache.hit_rate" in out
        assert "session.pool.utilization" in out
        assert "session.queue_depth" in out

    def test_stats_without_metrics_exits_nonzero(self, monkeypatch,
                                                 capsys):
        from repro.__main__ import main as cli_main
        # Every job fails permanently -> no result carries metrics.
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        status = cli_main(["stats", "tc", "--no-cache",
                           "--max-retries", "0", "--keep-going"])
        assert status == 3
        assert "no metrics were recorded" in capsys.readouterr().err

    def test_progress_flag_renders_line(self, capsys):
        from repro.__main__ import main as cli_main
        assert cli_main(["run", "tc", "--setup", "mirza",
                         "--progress", "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "[1/1] 100%" in err
        assert "hits 0%" in err

    def test_report_trace_out_writes_valid_span_trace(self, tmp_path,
                                                      monkeypatch,
                                                      capsys):
        import repro.report as report_mod
        from repro.__main__ import main as cli_main
        from repro.obs.export import SPAN_PIDS
        monkeypatch.setattr(
            report_mod, "EXHIBITS",
            [e for e in report_mod.EXHIBITS if e[2] == "table2"])
        out_md = tmp_path / "report.md"
        target = tmp_path / "trace.json"
        assert cli_main(["report", str(out_md), "--only", "table2",
                         "--trace-out", str(target),
                         "--no-cache"]) == 0
        payload = json.loads(target.read_text())
        assert validate_chrome_trace(payload) is None
        assert any(e.get("pid") == SPAN_PIDS["session"]
                   and e.get("name") == "run_many"
                   for e in payload["traceEvents"])
