"""Tests for the experiment runner (fast smoke at a deep scale)."""

import pytest

from repro.params import SimScale
from repro.sim.runner import (
    MINT_RFM_WINDOWS,
    baseline_setup,
    calibrated_workload,
    mint_rfm_setup,
    mirza_setup,
    naive_mirza_setup,
    prac_setup,
    run_baseline,
    run_workload,
    slowdown_for,
)

SCALE = SimScale(2048)  # ~16 us windows: smoke-test speed


class TestSetups:
    def test_baseline_has_no_tracker(self):
        setup = baseline_setup()
        assert setup.tracker_factory is None
        assert setup.rfm_bat is None
        assert not setup.use_prac_timings

    def test_prac_setup_uses_prac_timings(self):
        setup = prac_setup(1000)
        assert setup.use_prac_timings
        tracker = setup.tracker_factory(0, 0, 0)
        assert tracker.name == "prac"

    def test_mint_rfm_window_defaults(self):
        assert mint_rfm_setup(500).rfm_bat == 24
        assert mint_rfm_setup(1000).rfm_bat == 48
        assert mint_rfm_setup(2000).rfm_bat == 96

    def test_mint_rfm_windows_table(self):
        assert MINT_RFM_WINDOWS == {500: 24, 1000: 48, 2000: 96}

    def test_mirza_setup_scales_fth(self):
        setup = mirza_setup(1000, SimScale(64))
        assert setup.extra["config"].fth == 1500 // 64
        assert setup.mapping == "strided"

    def test_mirza_setup_fth_floor(self):
        # At extreme scales the threshold clamps at 1, never 0.
        setup = mirza_setup(1000, SCALE)
        assert setup.extra["config"].fth == 1

    def test_mirza_trackers_differ_per_bank_seed(self):
        setup = mirza_setup(1000, SCALE)
        a = setup.tracker_factory(0, 0, 0)
        b = setup.tracker_factory(0, 0, 1)
        seq_a = [a.mint.rng.random() for _ in range(3)]
        seq_b = [b.mint.rng.random() for _ in range(3)]
        assert seq_a != seq_b

    def test_naive_mirza_setup(self):
        setup = naive_mirza_setup(48, queue_entries=2)
        tracker = setup.tracker_factory(0, 0, 0)
        assert tracker.config.fth == 0
        assert tracker.queue.capacity == 2


class TestCalibration:
    def test_calibrated_workload_cached(self):
        # The calibrated pacing is cached, but each call returns a
        # *fresh* object so callers can't corrupt later cache hits.
        a = calibrated_workload("tc", SCALE, seed=3)
        b = calibrated_workload("tc", SCALE, seed=3)
        assert a is not b
        assert a.compute_per_miss_ps == b.compute_per_miss_ps
        assert a.mlp == b.mlp

    def test_cache_hit_unaffected_by_caller_mutation(self):
        # Regression: the module-global cache used to hand back the
        # same SyntheticWorkload to every caller, so mutating one
        # return value silently corrupted all subsequent hits.
        a = calibrated_workload("tc", SCALE, seed=3)
        calibrated = a.compute_per_miss_ps
        a.compute_per_miss_ps = 123_456_789
        b = calibrated_workload("tc", SCALE, seed=3)
        assert b.compute_per_miss_ps == calibrated

    def test_cache_is_bounded_lru(self, monkeypatch):
        from repro.sim import runner
        monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "2")
        runner._WORKLOAD_CACHE.clear()
        for name in ("tc", "cc", "bc"):
            calibrated_workload(name, SCALE, seed=3)
        assert len(runner._WORKLOAD_CACHE) == 2
        # Oldest entry (tc) was evicted; the newest two remain.
        names = [key[0] for key in runner._WORKLOAD_CACHE]
        assert names == ["cc", "bc"]

    def test_calibration_cache_keyed_by_config(self):
        # Distinct SystemConfigs calibrate differently (pacing depends
        # on core count and timings) and must not share a cache slot.
        from repro.params import SystemConfig
        default = calibrated_workload("tc", SCALE, seed=3)
        other = calibrated_workload(
            "tc", SCALE, seed=3, config=SystemConfig(num_cores=4))
        assert other is not default
        assert other.config.num_cores == 4
        # The default-config entry is untouched.
        again = calibrated_workload("tc", SCALE, seed=3)
        assert again.compute_per_miss_ps == default.compute_per_miss_ps
        assert again.config.num_cores == default.config.num_cores

    def test_calibration_hits_target_rate(self):
        result = run_baseline("tc", SCALE, seed=1)
        from repro.workloads.specs import workload_by_name
        spec = workload_by_name("tc")
        target = spec.acts_per_subarray_mean / SCALE.time_scale
        assert result.acts_per_subarray() == pytest.approx(
            target, rel=0.35)


class TestRunning:
    def test_baseline_cached(self):
        a = run_baseline("tc", SCALE, seed=0)
        b = run_baseline("tc", SCALE, seed=0)
        assert a is b

    def test_protected_run_returns_stats(self):
        result = run_workload("tc", mirza_setup(1000, SCALE), SCALE)
        assert result.total_activations > 0
        assert len(result.alerts) == 2

    def test_slowdown_for_returns_pair(self):
        sd, result = slowdown_for("tc", prac_setup(1000), SCALE)
        assert isinstance(sd, float)
        assert result.total_requests > 0

    def test_prac_slows_down_memory_bound_workload(self):
        sd, _ = slowdown_for("tc", prac_setup(1000), SCALE)
        assert sd > 0.0

    def test_mirza_cheaper_than_mint_rfm(self):
        mirza_sd, _ = slowdown_for("tc", mirza_setup(1000, SCALE),
                                   SCALE)
        rfm_sd, _ = slowdown_for("tc", mint_rfm_setup(1000), SCALE)
        assert mirza_sd <= rfm_sd
