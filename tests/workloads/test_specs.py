"""Tests for the Table IV workload descriptors."""

import pytest

from repro.workloads.specs import (
    ALL_WORKLOADS,
    GAP_WORKLOADS,
    MIX_WORKLOADS,
    SPEC_WORKLOADS,
    average_characteristics,
    workload_by_name,
)


class TestTable4:
    def test_workload_counts(self):
        # 12 SPEC + 6 GAP + 6 mixes = 24 workloads.
        assert len(SPEC_WORKLOADS) == 12
        assert len(GAP_WORKLOADS) == 6
        assert len(MIX_WORKLOADS) == 6
        assert len(ALL_WORKLOADS) == 24

    def test_unique_names(self):
        names = [w.name for w in ALL_WORKLOADS]
        assert len(set(names)) == len(names)

    def test_all_spec_mpki_above_one(self):
        # Section III-B: only SPEC benchmarks with >= 1 L3-MPKI.
        assert all(w.l3_mpki >= 1.0 for w in SPEC_WORKLOADS)

    def test_lookup_by_name(self):
        cc = workload_by_name("cc")
        assert cc.l3_mpki == 57.9
        assert cc.acts_per_subarray_mean == 1037
        assert cc.acts_per_subarray_std == 542

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            workload_by_name("doom")

    def test_table4_average_row(self):
        mpki, act_pki, util, mean, std = average_characteristics()
        # Table IV's last row: 24.4 / 18.5 / 63.4 / 806 / 309.
        assert mpki == pytest.approx(24.4, abs=0.5)
        assert act_pki == pytest.approx(18.5, abs=0.5)
        assert util == pytest.approx(63.4, abs=1.0)
        assert mean == pytest.approx(806, abs=10)
        assert std == pytest.approx(309, abs=10)

    def test_acts_per_subarray_range_matches_section_iv(self):
        # Section IV-C: workloads incur ~100-1500 ACTs/subarray/tREFW.
        means = [w.acts_per_subarray_mean for w in ALL_WORKLOADS]
        assert min(means) >= 80
        assert max(means) <= 1500


class TestDerivedParameters:
    def test_miss_burst_at_least_one(self):
        assert all(w.miss_burst >= 1 for w in ALL_WORKLOADS)

    def test_miss_burst_reflects_locality(self):
        assert workload_by_name("bc").miss_burst == 2     # 58.8 / 29.7
        assert workload_by_name("cc").miss_burst == 1     # 57.9 / 51.5
        assert workload_by_name("sssp").miss_burst == 2   # 27.2 / 13

    def test_instructions_per_miss(self):
        assert workload_by_name("blender").instructions_per_miss == 909
        assert workload_by_name("tc").instructions_per_miss == 11

    def test_hot_traffic_fraction_bounded(self):
        for w in ALL_WORKLOADS:
            assert 0.1 <= w.hot_traffic_fraction <= 0.85

    def test_hot_fraction_tracks_relative_spread(self):
        skewed = workload_by_name("cc")       # sigma/mu = 0.52
        flat = workload_by_name("tc")         # sigma/mu = 0.21
        assert skewed.hot_traffic_fraction > flat.hot_traffic_fraction

    def test_acts_per_bank_per_window(self):
        assert workload_by_name("cc").acts_per_bank_per_window == \
            pytest.approx(1037 * 128)
