"""Tests for external-trace ingestion: formats, gzip, conversion."""

import gzip
import io

import pytest

from repro.cpu.trace import TraceEntry
from repro.dram.mapping import AddressSpaceSpec, BitFieldDecoder
from repro.params import DramGeometry
from repro.workloads.tracefile import (
    TraceFileWorkload,
    convert_trace,
    detect_format,
    load_trace,
    open_ingest,
    read_dramsim3_trace,
    read_litex_rows,
    trace_metadata,
    write_trace,
)

GEOMETRY = DramGeometry()
DECODER = BitFieldDecoder.for_geometry(GEOMETRY)


def entries(n=6):
    return [TraceEntry(compute_ps=100 * i, instructions=10,
                       subchannel=i % 2, bank=i % 4, row=i * 11)
            for i in range(n)]


def dramsim3_text(records):
    """Render ``(subch, bank, row, col, cycle)`` records as a trace."""
    lines = ["# comment"]
    for subch, bank, row, col, cycle in records:
        address = DECODER.encode_bus(subchannel=subch, bank=bank,
                                     row=row, column=col)
        lines.append(f"0x{address:x} READ {cycle}")
    return "\n".join(lines) + "\n"


class TestGzipTransparency:
    def test_native_round_trip_via_gz(self, tmp_path):
        path = str(tmp_path / "t.trace.gz")
        original = entries()
        write_trace(original, path, metadata={"workload": "tc"})
        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("#")
        assert load_trace(path) == original
        assert trace_metadata(path) == {"workload": "tc"}

    def test_dramsim3_ingest_via_gz(self, tmp_path):
        path = str(tmp_path / "t.ds3.gz")
        with gzip.open(path, "wt") as handle:
            handle.write(dramsim3_text([(1, 3, 42, 0, 0),
                                        (1, 3, 42, 1, 5)]))
        got = list(open_ingest(path))
        assert [(e.subchannel, e.bank, e.row) for e in got] \
            == [(1, 3, 42), (1, 3, 42)]


class TestDramsim3Format:
    def test_coordinates_and_cycle_deltas(self):
        text = dramsim3_text([(0, 7, 123, 0, 10), (1, 2, 456, 3, 16)])
        got = list(read_dramsim3_trace(io.StringIO(text),
                                       cycle_ps=100, instructions=4))
        assert got[0] == TraceEntry(0, 4, 0, 7, 123)
        assert got[1] == TraceEntry(600, 4, 1, 2, 456)

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ValueError, match="expected 3 fields"):
            list(read_dramsim3_trace(io.StringIO("0x0 READ\n")))

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError, match="non-integer"):
            list(read_dramsim3_trace(io.StringIO("zap READ 3\n")))

    def test_decreasing_cycle_rejected(self):
        text = dramsim3_text([(0, 0, 1, 0, 10), (0, 0, 2, 0, 4)])
        with pytest.raises(ValueError, match="line 3"):
            list(read_dramsim3_trace(io.StringIO(text)))

    def test_error_names_source_path(self, tmp_path):
        path = str(tmp_path / "bad.ds3")
        with open(path, "w") as handle:
            handle.write("not a record\n")
        with pytest.raises(ValueError, match="bad.ds3"):
            list(read_dramsim3_trace(path))


class TestLitexRowsFormat:
    def test_rows_become_single_bank_entries(self):
        got = list(read_litex_rows(io.StringIO("4\n0x10\n# c\n7\n"),
                                   bank=5, subchannel=1))
        assert [(e.subchannel, e.bank, e.row) for e in got] \
            == [(1, 5, 4), (1, 5, 16), (1, 5, 7)]

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError, match="non-integer"):
            list(read_litex_rows(io.StringIO("banana\n")))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            list(read_litex_rows(io.StringIO("-3\n")))

    def test_error_names_source_path(self, tmp_path):
        path = str(tmp_path / "bad.rows")
        with open(path, "w") as handle:
            handle.write("x\n")
        with pytest.raises(ValueError, match="bad.rows"):
            list(read_litex_rows(path))


class TestDetectAndConvert:
    @pytest.mark.parametrize("path, fmt", [
        ("a.trace", "native"), ("a.ds3", "dramsim3"),
        ("a.dramsim3.gz", "dramsim3"), ("a.rows", "litex-rows"),
        ("a.litex", "litex-rows"), ("a.anything", "native"),
    ])
    def test_detect_format_by_suffix(self, path, fmt):
        assert detect_format(path) == fmt

    def test_convert_records_metadata_claim(self, tmp_path):
        src = str(tmp_path / "in.ds3")
        dst = str(tmp_path / "out.trace")
        with open(src, "w") as handle:
            handle.write(dramsim3_text([(0, 1, 2, 0, 0),
                                        (0, 1, 2, 1, 6)]))
        count = convert_trace(src, dst, workload="tc",
                              instructions=11)
        assert count == 2
        meta = trace_metadata(dst)
        assert meta["workload"] == "tc"
        assert meta["source"] == src
        assert all(e.instructions == 11 for e in load_trace(dst))

    def test_auto_needs_a_path(self):
        with pytest.raises(ValueError, match="auto"):
            list(open_ingest(io.StringIO("")))


class TestTraceFileWorkloadRouting:
    def test_address_space_spec_translates_entries(self, tmp_path):
        path = str(tmp_path / "t.trace")
        write_trace([TraceEntry(0, 1, 0, 2, 100)], path)
        spec = AddressSpaceSpec(kind="strided", stride=3,
                                row_offset=5, bank_offset=1)
        workload = TraceFileWorkload(path, address_space=spec,
                                     geometry=GEOMETRY)
        entry = next(iter(workload.trace(0)))
        assert (entry.subchannel, entry.bank, entry.row) \
            == (0, 3, 305)

    def test_workload_claim_read_from_metadata(self, tmp_path):
        path = str(tmp_path / "t.trace")
        write_trace(entries(), path, metadata={"workload": "mcf"})
        assert TraceFileWorkload(path).workload == "mcf"

    def test_shard_splits_contiguously(self, tmp_path):
        path = str(tmp_path / "t.trace")
        original = entries(8)
        write_trace(original, path)
        workload = TraceFileWorkload(path, per_core="shard",
                                     shard_cores=4)
        shards = [workload.shard(4, core) for core in range(4)]
        assert [e for shard in shards for e in shard] == original

    def test_trace_chunk_arrays_cover_the_trace(self, tmp_path):
        numpy = pytest.importorskip("numpy")
        path = str(tmp_path / "t.trace")
        original = entries(10)
        write_trace(original, path)
        workload = TraceFileWorkload(path)
        chunks = list(workload.trace_chunk_arrays(0, chunk_size=4))
        assert sum(len(c) for c in chunks) == len(original)
        rows = numpy.concatenate([c["row"] for c in chunks])
        assert list(rows) == [e.row for e in original]
