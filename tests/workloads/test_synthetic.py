"""Tests for the calibrated synthetic workload generator."""


import pytest

from repro.cpu.trace import take
from repro.params import SimScale, SystemConfig
from repro.workloads.specs import workload_by_name
from repro.workloads.synthetic import SyntheticWorkload


@pytest.fixture
def cc():
    return SyntheticWorkload(workload_by_name("cc"),
                             SystemConfig(), SimScale(256), seed=1)


class TestPacing:
    def test_target_inter_miss_scales_with_rate(self):
        config, scale = SystemConfig(), SimScale(256)
        heavy = SyntheticWorkload(workload_by_name("cc"), config, scale)
        light = SyntheticWorkload(workload_by_name("blender"), config,
                                  scale)
        assert light.target_inter_miss_ps > heavy.target_inter_miss_ps

    def test_mlp_at_least_one(self):
        for name in ("cc", "blender", "mcf", "tc"):
            syn = SyntheticWorkload(workload_by_name(name),
                                    SystemConfig(), SimScale(256))
            assert syn.mlp >= 1

    def test_heavy_workload_gets_more_mlp(self):
        config, scale = SystemConfig(), SimScale(256)
        heavy = SyntheticWorkload(workload_by_name("cc"), config, scale)
        light = SyntheticWorkload(workload_by_name("blender"), config,
                                  scale)
        assert heavy.mlp > light.mlp


class TestTraceShape:
    def test_entries_well_formed(self, cc):
        config = SystemConfig()
        for entry in take(cc.trace(0), 500):
            assert entry.compute_ps >= 250
            assert 0 <= entry.subchannel < config.geometry.subchannels
            assert 0 <= entry.bank < config.geometry.banks_per_subchannel
            assert 0 <= entry.row < config.geometry.rows_per_bank
            assert entry.instructions == \
                workload_by_name("cc").instructions_per_miss

    def test_burst_rows_repeat(self):
        syn = SyntheticWorkload(workload_by_name("bc"),  # burst = 2
                                SystemConfig(), SimScale(256), seed=3)
        entries = take(syn.trace(0), 400)
        repeats = sum(1 for a, b in zip(entries, entries[1:])
                      if (a.bank, a.row) == (b.bank, b.row))
        assert repeats >= 150  # roughly every other entry pairs up

    def test_burst_tail_is_back_to_back(self):
        syn = SyntheticWorkload(workload_by_name("bc"),
                                SystemConfig(), SimScale(256), seed=3)
        entries = take(syn.trace(0), 400)
        for a, b in zip(entries, entries[1:]):
            if (a.bank, a.row) == (b.bank, b.row):
                assert b.compute_ps == 250

    def test_deterministic_per_seed(self):
        def sample(seed):
            syn = SyntheticWorkload(workload_by_name("cc"),
                                    SystemConfig(), SimScale(256),
                                    seed=seed)
            return take(syn.trace(0), 100)
        assert sample(5) == sample(5)
        assert sample(5) != sample(6)

    def test_cores_get_different_streams(self, cc):
        assert take(cc.trace(0), 50) != take(cc.trace(1), 50)

    def test_bank_stickiness_creates_conflicts(self):
        sticky = SyntheticWorkload(workload_by_name("cc"),
                                   SystemConfig(), SimScale(256),
                                   bank_stickiness=0.9, seed=1)
        loose = SyntheticWorkload(workload_by_name("cc"),
                                  SystemConfig(), SimScale(256),
                                  bank_stickiness=0.0, seed=1)

        def same_bank_rate(syn):
            entries = take(syn.trace(0), 1000)
            same = sum(1 for a, b in zip(entries, entries[1:])
                       if (a.subchannel, a.bank) == (b.subchannel, b.bank)
                       and a.row != b.row)
            return same / len(entries)
        assert same_bank_rate(sticky) > same_bank_rate(loose) + 0.3


class TestSpatialLocality:
    def test_rows_form_contiguous_working_set(self, cc):
        per_bank = {}
        for entry in take(cc.trace(0), 5000):
            per_bank.setdefault((entry.subchannel, entry.bank),
                                []).append(entry.row)
        for rows in per_bank.values():
            if len(rows) < 20:
                continue
            assert max(rows) - min(rows) <= cc.ws_rows

    def test_hot_rows_concentrate_traffic(self, cc):
        counts = {}
        for entry in take(cc.trace(0), 20_000):
            key = (entry.subchannel, entry.bank, entry.row)
            counts[key] = counts.get(key, 0) + 1
        top = sorted(counts.values(), reverse=True)
        hot_share = sum(top[:len(top) // 10]) / sum(top)
        # Under a uniform generator the top decile would hold ~10% of
        # the traffic; the hot-row overlay must concentrate well beyond.
        assert hot_share > 0.18
