"""Tests for trace file I/O and mixed (multi-programmed) workloads."""

import io

import pytest

from repro.cpu.trace import TraceEntry, take
from repro.params import SimScale, SystemConfig
from repro.workloads.mixed import PAPER_MIXES, MixedWorkload
from repro.workloads.tracefile import (
    load_trace,
    read_trace,
    trace_from_string,
    write_trace,
)


def entries(n=5):
    return [TraceEntry(compute_ps=100 + i, instructions=10 + i,
                       subchannel=i % 2, bank=i % 4, row=i * 7)
            for i in range(n)]


class TestTraceFile:
    def test_roundtrip_via_path(self, tmp_path):
        path = str(tmp_path / "t.trace")
        original = entries(20)
        assert write_trace(original, path) == 20
        assert load_trace(path) == original

    def test_roundtrip_via_file_object(self):
        buffer = io.StringIO()
        original = entries(3)
        write_trace(original, buffer)
        buffer.seek(0)
        assert load_trace(buffer) == original

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n100 10 0 1 42\n  \n# tail\n"
        assert trace_from_string(text) == [
            TraceEntry(100, 10, 0, 1, 42)]

    def test_wrong_field_count_rejected(self):
        with pytest.raises(ValueError, match="expected 5 fields"):
            trace_from_string("1 2 3\n")

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError, match="non-integer"):
            trace_from_string("a 2 3 4 5\n")

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            trace_from_string("-1 2 3 4 5\n")

    def test_error_reports_line_number(self):
        with pytest.raises(ValueError, match="line 3"):
            trace_from_string("# c\n1 2 3 4 5\nbroken\n")

    def test_lazy_reading(self):
        text = "1 2 3 4 5\nbroken line\n"
        reader = read_trace(io.StringIO(text))
        assert next(reader) == TraceEntry(1, 2, 3, 4, 5)
        with pytest.raises(ValueError):
            next(reader)


class TestMixedWorkload:
    def test_members_round_robin_over_cores(self):
        mix = MixedWorkload(["cc", "blender"],
                            scale=SimScale(512))
        names = [spec.name for spec in mix.assignments]
        assert names == ["cc", "blender"] * 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MixedWorkload([])

    def test_traces_reflect_member_intensity(self):
        mix = MixedWorkload(["cc", "blender"], scale=SimScale(512))
        cc_entries = take(mix.trace(0), 50)
        blender_entries = take(mix.trace(1), 50)
        cc_pace = sum(e.compute_ps for e in cc_entries)
        blender_pace = sum(e.compute_ps for e in blender_entries)
        assert blender_pace > cc_pace  # blender is far lighter

    def test_paper_mixes_all_defined(self):
        assert sorted(PAPER_MIXES) == [f"mix_{i}" for i in
                                       range(1, 7)]
        for name in PAPER_MIXES:
            mix = MixedWorkload.paper_mix(name, scale=SimScale(512))
            assert len(mix.assignments) == 8

    def test_unknown_mix_raises(self):
        with pytest.raises(KeyError):
            MixedWorkload.paper_mix("mix_99")

    def test_mlp_is_max_of_members(self):
        mix = MixedWorkload(["cc", "blender"], scale=SimScale(512))
        assert mix.mlp == max(mix.mlp_for(0), mix.mlp_for(1))

    def test_runs_through_the_system(self):
        mix = MixedWorkload(["tc", "blender"], scale=SimScale(2048))
        from repro.cpu.system import MultiCoreSystem
        config = SystemConfig()
        system = MultiCoreSystem(config, mix.trace_factory(),
                                 mlp=mix.mlp)
        result = system.run(SimScale(2048).scaled_trefw(config.timings))
        assert result.total_requests > 0
        # Heavy members out-issue light ones.
        assert result.instructions[0] != result.instructions[1]
