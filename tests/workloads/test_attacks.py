"""Tests for the adversarial pattern generators."""


import pytest

from repro.cpu.trace import take
from repro.dram.mapping import SequentialR2SA, StridedR2SA
from repro.params import SystemConfig
from repro.workloads.attacks import (
    benign_striped_trace,
    double_sided_attack_stream,
    feinting_attack_stream,
    performance_attack_trace,
    trr_evasion_pattern,
    worst_case_single_bank_stream,
)


class TestDoubleSided:
    def test_alternates_the_two_neighbors(self):
        m = SequentialR2SA()
        rows = list(double_sided_attack_stream(100, m, 10))
        assert set(rows) == {99, 101}
        assert rows[0] != rows[1]

    def test_strided_neighbors(self):
        m = StridedR2SA()
        victim = 5 * 128 + 3
        rows = set(double_sided_attack_stream(victim, m, 4))
        assert rows == {victim - 128, victim + 128}

    def test_edge_victim_degrades_to_single_sided(self):
        # Row 0 has one physical neighbour; the stream hammers it
        # single-sided instead of crashing (fuzzers pick victims
        # uniformly, edges included).
        m = SequentialR2SA()
        rows = list(double_sided_attack_stream(0, m, 4))
        assert rows == [1, 1, 1, 1]

    def test_edge_victim_rejected_when_strict(self):
        m = SequentialR2SA()
        with pytest.raises(ValueError):
            list(double_sided_attack_stream(0, m, 4,
                                            allow_single_sided=False))


class TestWorstCase:
    def test_cycles_rows(self):
        rows = list(worst_case_single_bank_stream([1, 2, 3], 7))
        assert rows == [1, 2, 3, 1, 2, 3, 1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            list(worst_case_single_bank_stream([], 5))


class TestFeinting:
    def test_round_robin_exceeds_tracker_size(self):
        rows = list(feinting_attack_stream(8, 100))
        assert len(set(rows)) == 9  # entries + default decoys
        counts = {r: rows.count(r) for r in set(rows)}
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_explicit_decoys(self):
        rows = set(feinting_attack_stream(4, 100, decoys=3))
        assert len(rows) == 7

    def test_zero_decoys_rejected(self):
        # decoys=0 collapses the rotation to exactly the tracker's
        # capacity -- a benign workload, not a feint.
        with pytest.raises(ValueError):
            list(feinting_attack_stream(8, 100, decoys=0))


class TestTrrEvasion:
    def test_target_interleaved_with_decoys(self):
        rows = list(trr_evasion_pattern(4, target_row=50, acts=100,
                                        seed=7))
        assert rows.count(50) >= 5
        assert len(set(rows)) > 8

    def test_exact_act_count(self):
        assert len(list(trr_evasion_pattern(4, 50, 123, seed=7))) == 123

    def test_seed_is_required_and_distinguishes_streams(self):
        with pytest.raises(TypeError):
            list(trr_evasion_pattern(4, 50, 100))
        one = list(trr_evasion_pattern(4, 50, 200, seed=1))
        two = list(trr_evasion_pattern(4, 50, 200, seed=2))
        again = list(trr_evasion_pattern(4, 50, 200, seed=1))
        assert one == again
        assert one != two


class TestPerformanceAttack:
    def test_circular_rows_in_one_bank(self):
        config = SystemConfig()
        entries = take(performance_attack_trace(config, k_rows=6,
                                                bank=3), 30)
        assert all(e.bank == 3 for e in entries)
        rows = [e.row for e in entries]
        assert rows[:6] == rows[6:12]
        assert len(set(rows)) == 6

    def test_row_stride_follows_mapping(self):
        config = SystemConfig()
        stride = config.geometry.subarrays_per_bank
        entries = take(performance_attack_trace(
            config, k_rows=4, row_stride=stride), 4)
        mapping = StridedR2SA(config.geometry)
        subarrays = {mapping.subarray_of(e.row) for e in entries}
        assert len(subarrays) == 1

    def test_back_to_back_compute(self):
        config = SystemConfig()
        entries = take(performance_attack_trace(config, k_rows=2), 10)
        assert all(e.compute_ps == 250 for e in entries)

    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError):
            next(performance_attack_trace(SystemConfig(), k_rows=0))


class TestBenignStriped:
    def test_stripes_over_banks(self):
        config = SystemConfig()
        entries = take(benign_striped_trace(config, banks=16), 64)
        banks = [e.bank for e in entries]
        assert banks[:16] == list(range(16))
        assert banks[16:32] == list(range(16))
