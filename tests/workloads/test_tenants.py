"""Tests for multi-tenant scenarios and per-tenant accounting."""

import pytest

from repro.params import SimScale, SystemConfig
from repro.sim.backend import vector_available
from repro.sim.runner import baseline_setup, simulate_tenants
from repro.workloads.tenants import (
    Tenant,
    TenantScenario,
    TenantWorkload,
    intervm_scenario,
    scenario_footprints,
)

SCALE = SimScale(4096)

backends = pytest.mark.parametrize("backend", [
    "event", "array",
    pytest.param("vector", marks=pytest.mark.skipif(
        not vector_available(), reason="needs numpy>=1.24")),
])


class TestScenarioShape:
    def test_intervm_layout_and_labels(self):
        scenario = intervm_scenario(attack_rows=8, victim="mcf",
                                    attacker_cores=2)
        scenario.validate(8)
        assert scenario.label() == "attacker:atk8x2+victim:mcfx6"
        by_core = scenario.tenant_for_core()
        assert by_core[0].name == "attacker"
        assert by_core[7].name == "victim"

    def test_overlapping_cores_rejected(self):
        scenario = TenantScenario((
            Tenant("a", cores=(0, 1), workload="tc"),
            Tenant("b", cores=(1, 2), workload="mcf"),
        ))
        with pytest.raises(ValueError, match="core"):
            scenario.validate(8)

    def test_out_of_range_core_rejected(self):
        scenario = TenantScenario((
            Tenant("a", cores=(9,), workload="tc"),))
        with pytest.raises(ValueError):
            scenario.validate(8)

    def test_tenant_cannot_be_both_kinds(self):
        with pytest.raises(ValueError):
            Tenant("x", cores=(0,), workload="tc",
                   attack_rows=4).validate()

    def test_footprints_respect_address_spaces(self):
        scenario = intervm_scenario(attack_rows=8)
        config = SystemConfig()
        footprints = scenario_footprints(scenario, config)
        assert len(footprints["attacker"]) == 1
        geometry = config.geometry
        assert len(footprints["victim"]) == \
            geometry.subchannels * geometry.banks_per_subchannel
        for subch, bank in footprints["attacker"]:
            assert 0 <= subch < geometry.subchannels
            assert 0 <= bank < geometry.banks_per_subchannel


class TestTenantWorkload:
    def test_unassigned_core_is_idle(self):
        scenario = TenantScenario((
            Tenant("only", cores=(0,), workload="tc"),))
        workload = TenantWorkload(scenario, scale=SCALE)
        assert workload.tenant_labels(8) == ["only"] + [None] * 7
        assert list(workload.chunk_source(3)) == []

    def test_translation_keeps_chunk_contract(self):
        scenario = intervm_scenario(attack_rows=4, victim="mcf")
        workload = TenantWorkload(scenario, scale=SCALE)
        chunk = workload.chunk_source(0).next_chunk()
        assert chunk
        geometry = SystemConfig().geometry
        for compute_ps, instructions, subch, bank, row in chunk:
            assert 0 <= subch < geometry.subchannels
            assert 0 <= bank < geometry.banks_per_subchannel
            assert 0 <= row < geometry.rows_per_bank


class TestTenantAccounting:
    def test_result_carries_tenant_identity(self):
        result = simulate_tenants(
            intervm_scenario(attack_rows=4, victim="mcf"),
            baseline_setup(), SCALE)
        assert result.tenant_names() == ["attacker", "victim"]
        assert set(result.tenant_ipc()) == {"attacker", "victim"}
        assert len(result.unmitigated_by_bank) == 2

    def test_attacker_pressure_lowers_victim_ipc(self):
        quiet = simulate_tenants(
            intervm_scenario(attack_rows=0, victim="mcf"),
            baseline_setup(), SimScale(2048))
        loud = simulate_tenants(
            intervm_scenario(attack_rows=16, victim="mcf"),
            baseline_setup(), SimScale(2048))
        assert loud.tenant_ipc()["victim"] \
            < quiet.tenant_ipc()["victim"]
        assert loud.tenant_slowdown_pct(quiet, "victim") > 0

    def test_exposure_is_bounded_by_footprint(self):
        scenario = intervm_scenario(attack_rows=8, victim="mcf")
        result = simulate_tenants(scenario, baseline_setup(), SCALE)
        footprints = scenario_footprints(scenario, result.config)
        exposure = result.tenant_exposure(footprints)
        overall = max(max(banks) for banks in
                      result.unmitigated_by_bank)
        assert 0 <= exposure["attacker"] <= overall
        assert 0 <= exposure["victim"] <= overall


class TestBackendIdentity:
    @backends
    def test_intervm_cell_is_bit_identical(self, backend):
        from repro.sim.runner import mirza_setup
        result = simulate_tenants(
            intervm_scenario(attack_rows=8, victim="mcf"),
            mirza_setup(1000, SCALE), SCALE, backend=backend)
        reference = simulate_tenants(
            intervm_scenario(attack_rows=8, victim="mcf"),
            mirza_setup(1000, SCALE), SCALE, backend="event")
        assert result.total_requests == reference.total_requests
        assert result.total_activations == reference.total_activations
        assert result.ipc == reference.ipc
        assert result.alerts == reference.alerts
        assert result.unmitigated_by_bank \
            == reference.unmitigated_by_bank
