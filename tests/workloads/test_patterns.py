"""Tests for the declarative attack-pattern DSL."""

import pytest

from repro.cpu.trace import take
from repro.dram.mapping import SequentialR2SA, StridedR2SA
from repro.sim.session import describe, job_token
from repro.workloads.patterns import (
    CompileContext,
    DecoyEvasion,
    DoubleSided,
    Feint,
    HalfDouble,
    NSided,
    RefreshSyncBurst,
    RowCycle,
    Sequence,
    paper_attack_set,
)


@pytest.fixture
def ctx():
    return CompileContext.make(mapping=SequentialR2SA())


class TestCompileContext:
    def test_defaults_derive_from_config(self, ctx):
        from repro.security.analysis import acts_per_ref_interval
        assert ctx.acts_per_trefi == acts_per_ref_interval()
        assert isinstance(ctx.mapping, SequentialR2SA)

    def test_explicit_budget_wins(self):
        ctx = CompileContext.make(acts_per_trefi=50)
        assert ctx.acts_per_trefi == 50


class TestDoubleSided:
    def test_alternates_neighbors(self, ctx):
        rows = list(DoubleSided(victim_row=100, acts=6).rows(ctx))
        assert rows == [99, 101, 99, 101, 99, 101]

    def test_edge_victim_degrades_to_single_sided(self, ctx):
        rows = list(DoubleSided(victim_row=0, acts=4).rows(ctx))
        assert rows == [1, 1, 1, 1]

    def test_edge_victim_strict_raises(self, ctx):
        pattern = DoubleSided(victim_row=0, acts=4,
                              allow_single_sided=False)
        with pytest.raises(ValueError):
            list(pattern.rows(ctx))

    def test_respects_mapping(self):
        ctx = CompileContext.make(mapping=StridedR2SA())
        victim = 5 * 128 + 3
        rows = set(DoubleSided(victim_row=victim, acts=4).rows(ctx))
        assert rows == {victim - 128, victim + 128}


class TestNSided:
    def test_covers_n_nearest_neighbors(self, ctx):
        rows = set(NSided(victim_row=100, sides=4, acts=40).rows(ctx))
        assert rows == {98, 99, 101, 102}

    def test_rejects_zero_sides(self, ctx):
        with pytest.raises(ValueError):
            list(NSided(victim_row=100, sides=0, acts=4).rows(ctx))


class TestHalfDouble:
    def test_far_to_near_ratio(self, ctx):
        pattern = HalfDouble(victim_row=100, acts=18,
                             far_acts_per_near=8)
        rows = list(pattern.rows(ctx))
        assert len(rows) == 18
        near = sum(1 for r in rows if r in (99, 101))
        far = sum(1 for r in rows if r in (98, 102))
        assert near == 2 and far == 16

    def test_edge_victim_survives(self, ctx):
        rows = list(HalfDouble(victim_row=0, acts=9).rows(ctx))
        assert len(rows) == 9


class TestFeint:
    def test_rotation_exceeds_tracker(self, ctx):
        rows = list(Feint(tracker_entries=8, acts=100,
                          decoys=1).rows(ctx))
        assert len(set(rows)) == 9

    def test_zero_decoys_rejected(self, ctx):
        with pytest.raises(ValueError):
            list(Feint(tracker_entries=8, acts=10, decoys=0).rows(ctx))


class TestDecoyEvasion:
    def test_seeded_determinism(self, ctx):
        spec = dict(table_entries=8, target_row=50, acts=200, seed=3)
        one = list(DecoyEvasion(**spec).rows(ctx))
        two = list(DecoyEvasion(**spec).rows(ctx))
        other = list(DecoyEvasion(**dict(spec, seed=4)).rows(ctx))
        assert one == two
        assert one != other

    def test_exact_act_count(self, ctx):
        rows = list(DecoyEvasion(table_entries=8, target_row=50,
                                 acts=123, seed=0).rows(ctx))
        assert len(rows) == 123

    def test_burst_knob_sets_target_rate(self, ctx):
        dense = DecoyEvasion(table_entries=8, target_row=50, acts=300,
                             seed=0, burst=2)
        sparse = DecoyEvasion(table_entries=8, target_row=50, acts=300,
                              seed=0, burst=30)
        dense_hits = list(dense.rows(ctx)).count(50)
        sparse_hits = list(sparse.rows(ctx)).count(50)
        assert dense_hits > sparse_hits


class TestRefreshSyncBurst:
    def test_bursts_align_with_trefi_budget(self):
        ctx = CompileContext.make(acts_per_trefi=10)
        pattern = RefreshSyncBurst(aggressors=(5, 7),
                                   reads_per_trefi=4, acts=30, seed=1)
        rows = list(pattern.rows(ctx))
        assert len(rows) == 30
        # Each 10-ACT interval opens with 4 aggressor hits, then 6
        # one-hit sync fillers.
        for start in (0, 10, 20):
            interval = rows[start:start + 10]
            assert interval[:4] == [5, 7, 5, 7]
            assert all(r > 1000 for r in interval[4:])

    def test_explicit_sync_acts(self):
        ctx = CompileContext.make(acts_per_trefi=10)
        pattern = RefreshSyncBurst(aggressors=(5,), reads_per_trefi=2,
                                   acts=12, seed=1, sync_acts=1)
        rows = list(pattern.rows(ctx))
        assert rows.count(5) == 8

    def test_rejects_empty_aggressors(self, ctx):
        with pytest.raises(ValueError):
            list(RefreshSyncBurst(aggressors=(), reads_per_trefi=1,
                                  acts=4, seed=0).rows(ctx))


class TestSequence:
    def test_concatenates_parts(self, ctx):
        pattern = Sequence(parts=(
            RowCycle(row_list=(1, 2), acts=4),
            RowCycle(row_list=(9,), acts=2)))
        assert list(pattern.rows(ctx)) == [1, 2, 1, 2, 9, 9]


class TestCompilationAgreement:
    def test_stream_and_trace_agree(self, ctx):
        pattern = DecoyEvasion(table_entries=8, target_row=50,
                               acts=100, seed=2)
        stream = list(pattern.rows(ctx))
        trace = list(pattern.trace(ctx))
        assert [e.row for e in trace] == stream
        assert all(e.bank == ctx.bank and e.subchannel == ctx.subchannel
                   and e.compute_ps == ctx.compute_ps for e in trace)

    def test_workload_serves_the_same_trace(self, ctx):
        pattern = RowCycle(row_list=(3, 4, 5), acts=9)
        workload = pattern.workload(ctx, cores=(0, 2))
        rows = [e.row for e in take(workload.trace(0), 9)]
        assert rows == [3, 4, 5] * 3
        assert [e.row for e in take(workload.trace(2), 9)] == rows
        assert list(workload.trace(1)) == []

    def test_chunk_arrays_match_entries(self, ctx):
        pytest.importorskip("numpy")
        pattern = Feint(tracker_entries=4, acts=20, decoys=1)
        rows = [e.row for e in pattern.trace(ctx)]
        source = pattern.chunk_source(ctx, chunk_size=8)
        seen = []
        while True:
            chunk = source.next_chunk_array()
            if chunk is None:
                break
            seen.extend(int(r) for r in chunk["row"])
        assert seen == rows


class TestJobMaterial:
    def test_patterns_are_hashable_job_material(self):
        pattern = RefreshSyncBurst(aggressors=(5, 7),
                                   reads_per_trefi=4, acts=30, seed=1)
        assert hash(pattern) == hash(RefreshSyncBurst(
            aggressors=(5, 7), reads_per_trefi=4, acts=30, seed=1))
        assert describe(pattern)["__class__"] == "RefreshSyncBurst"

    def test_seed_changes_the_token(self):
        one = DecoyEvasion(table_entries=8, target_row=50, acts=100,
                           seed=1)
        two = DecoyEvasion(table_entries=8, target_row=50, acts=100,
                           seed=2)
        assert job_token(one) != job_token(two)

    def test_labels_are_deterministic(self):
        pattern = DoubleSided(victim_row=7, acts=10)
        assert pattern.label() == DoubleSided(victim_row=7,
                                              acts=10).label()
        assert pattern.label().startswith("double-sided(")


class TestPaperSet:
    def test_covers_the_fixed_vocabulary(self, ctx):
        patterns = paper_attack_set(acts=50)
        assert set(patterns) == {"double-sided", "focused", "feinting",
                                 "trr-evasion"}
        for pattern in patterns.values():
            assert len(list(pattern.rows(ctx))) == 50
