"""Tests for the DRAM energy model."""

import pytest

from repro.cpu.system import SimResult
from repro.energy import (
    EnergyParams,
    energy_of_run,
    mirza_sram_power_fraction,
    mitigation_energy_per_act,
)
from repro.params import SystemConfig


def fake_result(**overrides):
    result = SimResult(window_ps=1_000_000, config=SystemConfig())
    result.total_activations = 100
    result.total_requests = 150
    result.demand_rows_refreshed = 1000
    result.victim_rows_refreshed = 40
    for key, value in overrides.items():
        setattr(result, key, value)
    return result


class TestEnergyOfRun:
    def test_components_add_up(self):
        breakdown = energy_of_run(fake_result())
        total = (breakdown.activation_pj + breakdown.read_pj
                 + breakdown.demand_refresh_pj
                 + breakdown.victim_refresh_pj
                 + breakdown.background_pj)
        assert breakdown.total_pj == total

    def test_command_energies(self):
        p = EnergyParams()
        b = energy_of_run(fake_result(), p)
        assert b.activation_pj == 100 * p.act_pre_pj
        assert b.read_pj == 150 * p.read_pj
        assert b.demand_refresh_pj == 1000 * p.ref_per_row_pj
        assert b.victim_refresh_pj == 40 * p.ref_per_row_pj

    def test_background_scales_with_window(self):
        short = energy_of_run(fake_result(window_ps=1_000_000))
        long = energy_of_run(fake_result(window_ps=2_000_000))
        assert long.background_pj == 2 * short.background_pj

    def test_refresh_power_overhead_matches_row_ratio(self):
        b = energy_of_run(fake_result())
        assert b.refresh_power_overhead == pytest.approx(0.04)

    def test_zero_refresh_edge(self):
        b = energy_of_run(fake_result(demand_rows_refreshed=0,
                                      victim_rows_refreshed=0))
        assert b.refresh_power_overhead == 0.0

    def test_mitigation_fraction_bounded(self):
        b = energy_of_run(fake_result())
        assert 0.0 < b.mitigation_fraction < 1.0


class TestConstants:
    def test_sram_power_fraction_matches_paper(self):
        # Section VIII-B: 0.6 mW of ~240 mW, approximately 0.25%.
        assert mirza_sram_power_fraction() == pytest.approx(0.0025)


class TestMitigationEnergyPerAct:
    def test_mint_vs_mirza_ratio_is_escape_probability(self):
        mint = mitigation_energy_per_act(48, 1.0)
        mirza = mitigation_energy_per_act(12, 1 / 114)
        # Table VIII's 28.5x reduction carries into energy exactly.
        assert mint / mirza == pytest.approx(28.5, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            mitigation_energy_per_act(0, 1.0)
        with pytest.raises(ValueError):
            mitigation_energy_per_act(8, 1.5)

    def test_zero_escape_costs_nothing(self):
        assert mitigation_energy_per_act(12, 0.0) == 0.0
