"""Tests for the set-associative LLC."""

import pytest

from repro.cache.llc import SetAssociativeCache


def small_cache(sets=4, ways=2, line=64):
    return SetAssociativeCache(capacity_bytes=sets * ways * line,
                               ways=ways, line_bytes=line)


class TestSetAssociativeCache:
    def test_rejects_uneven_capacity(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=1000, ways=16)

    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert not c.access(0)
        assert c.access(0)
        assert (c.hits, c.misses) == (1, 1)

    def test_same_line_different_bytes_hit(self):
        c = small_cache()
        c.access(0)
        assert c.access(63)

    def test_lru_eviction(self):
        c = small_cache(sets=1, ways=2)
        c.access(0)
        c.access(64)
        c.access(128)  # evicts line 0
        assert not c.access(0)

    def test_lru_updated_on_hit(self):
        c = small_cache(sets=1, ways=2)
        c.access(0)
        c.access(64)
        c.access(0)      # 0 becomes MRU
        c.access(128)    # evicts 64
        assert c.access(0)
        assert not c.access(64)

    def test_sets_are_independent(self):
        c = small_cache(sets=2, ways=1)
        c.access(0)       # set 0
        c.access(64)      # set 1
        assert c.access(0)
        assert c.access(64)

    def test_miss_stream(self):
        c = small_cache(sets=1, ways=1)
        stream = [0, 0, 64, 0]
        misses = list(c.miss_stream(stream))
        assert misses == [0, 64, 0]

    def test_mpki(self):
        c = small_cache()
        for addr in range(0, 64 * 100, 64):
            c.access(addr)
        assert c.mpki(10_000) == pytest.approx(10.0)
        assert c.mpki(0) == 0.0

    def test_reset_stats(self):
        c = small_cache()
        c.access(0)
        c.reset_stats()
        assert c.accesses == 0

    def test_default_is_16mb_16way(self):
        c = SetAssociativeCache()
        assert c.num_sets == 16 * 1024 * 1024 // (16 * 64)

    def test_working_set_larger_than_cache_thrashes(self):
        c = small_cache(sets=2, ways=2)  # 4 lines total
        addresses = [i * 64 for i in range(8)]
        for _ in range(3):
            for a in addresses:
                c.access(a)
        assert c.hits == 0
