"""Tests for the multi-RFM-per-ALERT extension."""

import dataclasses


from repro.dram.device import DramDevice
from repro.mitigations.base import BankTracker, MitigationSlotSource
from repro.params import AboTimings, SystemConfig, ns


class QueueTracker(BankTracker):
    """Holds a list of pending rows; one per mitigation slot."""

    name = "queue"

    def __init__(self):
        self.pending = []

    def on_activate(self, row, now_ps):
        self.pending.append(row)

    def wants_alert(self):
        return bool(self.pending)

    def on_mitigation_slot(self, now_ps, source):
        if source is MitigationSlotSource.ALERT and self.pending:
            return [self.pending.pop(0)]
        return []


class TestAboTimings:
    def test_total_stall_scales_with_rfms(self):
        assert AboTimings(rfms_per_alert=1).total_stall == ns(350)
        assert AboTimings(rfms_per_alert=4).total_stall == ns(1400)

    def test_latency_includes_all_rfms(self):
        assert AboTimings(rfms_per_alert=2).latency == ns(180 + 700)

    def test_default_is_one_rfm(self):
        assert AboTimings().rfms_per_alert == 1


class TestDeviceMultiSlotAlert:
    def _device(self, rfms):
        abo = AboTimings(rfms_per_alert=rfms)
        config = dataclasses.replace(SystemConfig(), abo=abo)
        return DramDevice(config,
                          tracker_factory=lambda b: QueueTracker())

    def test_single_rfm_drains_one_entry_per_bank(self):
        device = self._device(1)
        for row in (10, 20, 30):
            device.activate(0, row, 0)
        device.service_alert(0)
        assert device.trackers[0].pending == [20, 30]

    def test_four_rfms_drain_four_entries(self):
        device = self._device(4)
        for row in (10, 20, 30):
            device.activate(0, row, 0)
        device.service_alert(0)
        assert device.trackers[0].pending == []
        assert device.stats.mitigations_total == 3

    def test_explicit_slot_override(self):
        device = self._device(1)
        for row in (10, 20, 30):
            device.activate(0, row, 0)
        device.service_alert(0, rfm_slots=2)
        assert device.trackers[0].pending == [30]

    def test_alert_count_is_one_regardless_of_slots(self):
        device = self._device(4)
        device.activate(0, 10, 0)
        device.service_alert(0)
        assert device.stats.alerts_serviced == 1


class TestControllerStallScaling:
    def test_stall_window_covers_all_rfms(self, small_config):
        from repro.mc.abo import AboEngine
        abo = AboTimings(rfms_per_alert=2)
        engine = AboEngine(abo)
        start, end = engine.assert_alert(ns(1000))
        assert end - start == ns(700)
