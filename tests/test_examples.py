"""Smoke tests: the shipped examples stay runnable.

Only the fast examples execute end to end here; the heavier ones
(`quickstart`, `compare_mitigations`, `custom_trace`,
`security_audit`) are compile-checked so a refactor that breaks their
imports or syntax fails the suite immediately.
"""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))
FAST_EXAMPLES = ["provisioning_sweep.py", "rowhammer_playground.py"]


class TestExamplesExist:
    def test_at_least_three_examples(self):
        assert len(ALL_EXAMPLES) >= 3
        assert "quickstart.py" in ALL_EXAMPLES

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_example_has_module_docstring(self, name):
        source = (EXAMPLES / name).read_text()
        assert source.lstrip().startswith('"""'), name


class TestFastExamplesRun:
    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_runs_to_completion(self, name, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", [name])
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report
