"""Tests for repro.params: Table I timings and derived quantities."""

import dataclasses

import pytest

from repro.params import (
    AboTimings,
    DramGeometry,
    DramTimings,
    MitigationCosts,
    SimScale,
    SystemConfig,
    max_acts_per_bank_per_trefw,
    max_acts_per_channel_per_trefw,
    ns,
)


class TestNs:
    def test_integer_nanoseconds(self):
        assert ns(14) == 14_000

    def test_fractional_nanoseconds_round(self):
        assert ns(13.333) == 13_333

    def test_zero(self):
        assert ns(0) == 0


class TestDramTimings:
    def test_table1_defaults(self):
        t = DramTimings()
        assert t.tRCD == ns(14)
        assert t.tRP == ns(14)
        assert t.tRAS == ns(32)
        assert t.tRC == ns(46)
        assert t.tREFI == ns(3900)
        assert t.tRFC == ns(410)
        assert t.tREFW == 32 * 1000 * 1000 * 1000  # 32 ms in ps

    def test_prac_mode_inflates_trp_and_trc(self):
        p = DramTimings().with_prac()
        assert p.tRP == ns(36)
        assert p.tRC == ns(52)
        assert p.tRAS == ns(16)

    def test_prac_mode_keeps_trcd(self):
        assert DramTimings().with_prac().tRCD == ns(14)

    def test_refs_per_trefw_is_8192(self):
        assert DramTimings().refs_per_trefw == 8205  # 32ms / 3900ns

    def test_row_miss_latency(self):
        t = DramTimings()
        assert t.row_miss_latency == t.tRP + t.tRCD + t.tCAS

    def test_row_hit_latency(self):
        assert DramTimings().row_hit_latency == ns(14)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DramTimings().tRP = 0


class TestAboTimings:
    def test_figure4_constants(self):
        abo = AboTimings()
        assert abo.prologue == ns(180)
        assert abo.stall == ns(350)
        assert abo.latency == ns(530)

    def test_four_acts_between_alerts(self):
        # Section V-D: 3 prologue ACTs plus 1 mandatory epilogue ACT.
        assert AboTimings().acts_between_alerts == 4


class TestDramGeometry:
    def test_table3_defaults(self):
        g = DramGeometry()
        assert g.total_banks == 64
        assert g.rows_per_bank == 128 * 1024
        assert g.subarrays_per_bank == 128
        assert g.refs_per_subarray == 64

    def test_capacity_is_32gb(self):
        assert DramGeometry().capacity_bytes == 32 * 1024 ** 3

    def test_small_geometry(self, small_geometry):
        assert small_geometry.subarrays_per_bank == 4
        assert small_geometry.total_banks == 8


class TestMitigationCosts:
    def test_bounded_refresh_time(self):
        assert MitigationCosts().mitigation_time == ns(280)

    def test_blast_radius_victims(self):
        assert MitigationCosts().victims_per_mitigation == 4


class TestSystemConfig:
    def test_with_prac_timings_returns_new_config(self):
        base = SystemConfig()
        prac = base.with_prac_timings()
        assert prac.timings.tRP == ns(36)
        assert base.timings.tRP == ns(14)

    def test_core_cycle_at_4ghz(self):
        assert SystemConfig().core_cycle_ps == 250.0

    def test_table3_core_parameters(self):
        c = SystemConfig()
        assert c.num_cores == 8
        assert c.rob_entries == 392
        assert c.issue_width == 4
        assert c.llc_bytes == 16 * 1024 * 1024


class TestSimScale:
    def test_identity_scale(self):
        s = SimScale(1)
        t = DramTimings()
        assert s.scaled_trefw(t) == t.tREFW
        assert s.scale_threshold(1500) == 1500

    def test_scale_divides_window_and_threshold(self):
        s = SimScale(64)
        t = DramTimings()
        assert s.scaled_trefw(t) == t.tREFW // 64
        assert s.scale_threshold(1500) == 23
        assert s.scale_count(1037.0) == pytest.approx(1037 / 64)

    def test_scaled_refs_never_zero(self):
        s = SimScale(10 ** 9)
        assert s.scaled_refs_per_window(DramTimings()) == 1

    def test_threshold_never_zero(self):
        assert SimScale(10 ** 6).scale_threshold(10) == 1


class TestWorstCaseBounds:
    def test_max_acts_per_bank_near_621k(self):
        # Section IV-C: ~621K ACTs per bank per tREFW.
        acts = max_acts_per_bank_per_trefw()
        assert 600_000 <= acts <= 640_000

    def test_max_acts_per_channel_near_8_8m(self):
        # Footnote 2: ~8.8M ACTs per (sub)channel per tREFW.
        acts = max_acts_per_channel_per_trefw()
        assert 8_000_000 <= acts <= 9_700_000

    def test_bank_bound_below_channel_bound(self):
        assert max_acts_per_bank_per_trefw() < \
            max_acts_per_channel_per_trefw()
