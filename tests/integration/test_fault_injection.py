"""Failure-injection tests: what happens when pieces misbehave.

A production library must fail loudly and safely.  These tests inject
broken trackers, hostile trace generators, and degenerate
configurations into the full stack and assert the system either
contains the damage or raises a clear error.
"""

import pytest

from repro.cpu.system import MultiCoreSystem
from repro.cpu.trace import TraceEntry
from repro.dram.device import DramDevice
from repro.mc.controller import MemoryController
from repro.mitigations.base import BankTracker, MitigationSlotSource
from repro.params import ns


class LyingTracker(BankTracker):
    """Requests ALERTs but never produces anything to mitigate."""

    name = "liar"

    def on_activate(self, row, now_ps):
        pass

    def wants_alert(self):
        return True

    def on_mitigation_slot(self, now_ps, source):
        return []


class OutOfRangeTracker(BankTracker):
    """Returns a row id outside the bank on mitigation."""

    name = "out-of-range"

    def __init__(self):
        self.armed = False

    def on_activate(self, row, now_ps):
        self.armed = True

    def wants_alert(self):
        return self.armed

    def on_mitigation_slot(self, now_ps, source):
        if source is MitigationSlotSource.ALERT and self.armed:
            self.armed = False
            return [10 ** 9]
        return []


class TestLyingTracker:
    def test_empty_alerts_do_not_wedge_the_channel(self, small_config):
        """A tracker that cries wolf costs stalls but the epilogue-ACT
        rule prevents an ALERT livelock."""
        device = DramDevice(small_config,
                            tracker_factory=lambda b: LyingTracker())
        mc = MemoryController(small_config, device)
        t = 0
        for i in range(50):
            result = mc.serve(i % 4, i * 7 % 512, t)
            t = result.completion_time + ns(5)
        # Progress was made despite constant alerting...
        assert mc.total_requests == 50
        # ...and alerts are paced at one per activation, not unbounded.
        assert mc.alerts <= mc.total_activations

    def test_wasted_alerts_counted(self, small_config):
        device = DramDevice(small_config,
                            tracker_factory=lambda b: LyingTracker())
        mc = MemoryController(small_config, device)
        mc.serve(0, 10, 0)
        assert device.stats.alerts_serviced >= 1
        assert device.stats.mitigations_total == 0


class TestOutOfRangeMitigation:
    def test_bad_row_id_raises_clearly(self, small_config):
        device = DramDevice(small_config,
                            tracker_factory=lambda b:
                            OutOfRangeTracker())
        mc = MemoryController(small_config, device)
        with pytest.raises((ValueError, IndexError)):
            mc.serve(0, 10, 0)


class TestHostileTraces:
    def test_trace_with_invalid_row_rejected(self, small_config):
        def factory(core_id):
            def gen():
                yield TraceEntry(compute_ps=ns(1), instructions=1,
                                 subchannel=0, bank=0,
                                 row=small_config.geometry.rows_per_bank)
            return gen()
        system = MultiCoreSystem(small_config, factory, mlp=1)
        with pytest.raises(ValueError):
            system.run(ns(1_000_000))

    def test_zero_compute_floods_are_paced_by_dram(self, small_config):
        """A core issuing as fast as possible is throttled by timing
        constraints, not runaway memory growth."""
        def factory(core_id):
            def gen():
                i = 0
                while True:
                    yield TraceEntry(compute_ps=1, instructions=1,
                                     subchannel=0, bank=i % 4,
                                     row=(i * 131) % 512)
                    i += 1
            return gen()
        system = MultiCoreSystem(small_config, factory, mlp=4)
        result = system.run(ns(200_000))
        # Bounded by the tFAW ceiling: 4 ACTs per 13.333 ns.
        ceiling = int(200_000 / 13.333 * 4) + 16
        assert result.total_activations <= ceiling


class TestDegenerateWindows:
    def test_empty_window(self, small_config):
        def factory(core_id):
            return iter(())
        system = MultiCoreSystem(small_config, factory, mlp=1)
        result = system.run(ns(100_000))
        assert result.total_requests == 0
        assert result.ipc == [0.0] * small_config.num_cores
