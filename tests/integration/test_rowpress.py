"""Tests for the RowPress-to-equivalent-ACTs mitigation option."""


from repro.dram.device import DramDevice
from repro.mc.controller import MemoryController
from repro.mitigations.prac import PracTracker
from repro.params import ns


def make(small_config, rowpress=True, tracker=None):
    factory = (lambda b: tracker) if tracker is not None else None
    device = DramDevice(small_config, factory)
    mc = MemoryController(small_config, device,
                          rowpress_to_acts=rowpress)
    return mc, device


class TestRowPressConversion:
    def test_long_open_row_generates_equivalents(self, small_config):
        mc, device = make(small_config)
        mc.serve(0, 10, 0)
        # Hits keep extending the soft-close window, pressing the row
        # open for several tRAS periods before the conflict closes it.
        mc.serve(0, 10, ns(20))
        mc.serve(0, 10, ns(50))
        mc.serve(0, 500, ns(80))  # conflict: precharge ends the press
        assert device.stats.row_press_equivalents >= 1

    def test_disabled_by_default(self, small_config):
        mc, device = make(small_config, rowpress=False)
        mc.serve(0, 10, 0)
        mc.serve(0, 10, ns(20))
        mc.serve(0, 500, ns(40))
        assert device.stats.row_press_equivalents == 0

    def test_short_open_time_has_no_equivalents(self, small_config):
        mc, device = make(small_config)
        mc.serve(0, 10, 0)
        mc.serve(0, 500, ns(1))  # conflict right away: < 2x tRAS open
        assert device.stats.row_press_equivalents == 0

    def test_oracle_counts_equivalents(self, small_config):
        mc, device = make(small_config)
        mc.serve(0, 10, 0)
        mc.serve(0, 10, ns(20))
        mc.serve(0, 500, ns(40))
        pressed = device.stats.row_press_equivalents
        assert device.banks[0].oracle.max_unmitigated >= 1 + pressed

    def test_tracker_sees_equivalents(self, small_config):
        tracker = PracTracker(trhd=1000)
        mc, device = make(small_config, tracker=tracker)
        mc.serve(0, 10, 0)
        mc.serve(0, 10, ns(20))
        mc.serve(0, 500, ns(40))
        pressed = device.stats.row_press_equivalents
        assert tracker._counters.get(10, 0) == 1 + pressed

    def test_equivalents_capped(self, small_config):
        mc, device = make(small_config)
        mc.serve(0, 10, 0)
        # Keep the row open with hits for a very long time.
        t = ns(20)
        for _ in range(40):
            mc.serve(0, 10, t)
            t += ns(25)
        mc.serve(0, 500, t)
        assert device.stats.row_press_equivalents <= 16


class TestDeviceNoteRowPress:
    def test_zero_is_noop(self, small_config):
        device = DramDevice(small_config)
        device.note_row_press(0, 5, 0, 0)
        assert device.stats.row_press_equivalents == 0

    def test_counts_accumulate(self, small_config):
        device = DramDevice(small_config)
        device.note_row_press(0, 5, 3, 0)
        device.note_row_press(1, 9, 2, 0)
        assert device.stats.row_press_equivalents == 5
        assert device.banks[0].oracle.count(5) == 3
