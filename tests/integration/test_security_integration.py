"""End-to-end security: attacks vs defences, judged by the oracle.

These tests drive adversarial activation streams through the
single-bank harness and assert the paper's security claims:

- MIRZA (safe reset) bounds every row's unmitigated activations by the
  phase A-D budget of Section VI;
- the eager/lazy RCT reset policies of Appendix B leak ~2x FTH;
- TRR is broken by an eviction pattern while MIRZA is not;
- PRAC+ABO never lets a row cross its threshold;
- proactive MINT catches a focused hammer within its analytic bound.
"""

import random


from repro.core.config import MirzaConfig
from repro.core.mirza import MirzaTracker
from repro.core.rct import ResetPolicy
from repro.dram.mapping import SequentialR2SA
from repro.mitigations.mint_rfm import MintTracker
from repro.mitigations.mithril import MithrilTracker
from repro.mitigations.prac import PracTracker
from repro.mitigations.trr import TrrTracker
from repro.security.attacks import SingleBankHarness
from repro.security.mint_model import mint_tolerated_trhd
from repro.security.mirza_model import abo_extra_acts
from repro.workloads.attacks import (
    double_sided_attack_stream,
    feinting_attack_stream,
    trr_evasion_pattern,
)

FTH = 40
WINDOW = 4
QTH = 4


def small_mirza(geometry, policy=ResetPolicy.SAFE, seed=0):
    config = MirzaConfig(trhd=0, fth=FTH, mint_window=WINDOW,
                         num_regions=geometry.subarrays_per_bank,
                         queue_entries=4, qth=QTH)
    return MirzaTracker(config, geometry, SequentialR2SA(geometry),
                        random.Random(seed), reset_policy=policy)


def harness_for(tracker, geometry, acts_per_ref=50):
    from repro.params import SystemConfig
    config = SystemConfig(geometry=geometry)
    return SingleBankHarness(tracker, config, acts_per_ref=acts_per_ref)


def mirza_bound():
    """Phase A-D budget for the small test configuration."""
    return (FTH + 2 * mint_tolerated_trhd(WINDOW) + QTH
            + abo_extra_acts() + 1)


class TestMirzaDefends:
    def test_single_row_hammer_bounded(self, small_geometry):
        h = harness_for(small_mirza(small_geometry), small_geometry)
        h.run(iter([777] * 30_000))
        assert h.max_unmitigated <= mirza_bound()
        assert h.mitigations > 0

    def test_double_sided_hammer_bounded(self, small_geometry):
        tracker = small_mirza(small_geometry, seed=11)
        h = harness_for(tracker, small_geometry)
        victim = 500
        h.run(double_sided_attack_stream(
            victim, tracker.mapping, 30_000))
        assert h.max_unmitigated <= mirza_bound()

    def test_multi_row_rotation_bounded(self, small_geometry):
        tracker = small_mirza(small_geometry, seed=5)
        h = harness_for(tracker, small_geometry)
        rows = [100, 200, 300, 400]
        h.run(iter([rows[i % 4] for i in range(40_000)]))
        assert h.max_unmitigated <= mirza_bound()

    def test_saturation_attack_stays_bounded_despite_drops(
            self, small_geometry):
        # Section V-D: with MINT-W >= the 4 ACTs an attacker lands
        # between ALERTs, insertions average one per ALERT.  Selection
        # jitter can still collide with a full queue under saturation;
        # a dropped selection simply re-participates in MINT, so the
        # oracle bound must hold regardless.
        tracker = small_mirza(small_geometry, seed=7)
        h = harness_for(tracker, small_geometry)
        h.run(iter([(i * 37) % 1024 for i in range(40_000)]))
        assert h.max_unmitigated <= mirza_bound()
        assert h.alerts > 0

    def test_benign_spread_traffic_never_alerts(self, small_geometry):
        tracker = small_mirza(small_geometry)
        h = harness_for(tracker, small_geometry)
        rng = random.Random(3)
        # Spread traffic that keeps each region under FTH within the
        # refresh window: filtered entirely, no queue pressure.
        stream = (rng.randrange(small_geometry.rows_per_bank)
                  for _ in range(3 * FTH))
        h.run(stream)
        assert h.alerts == 0
        assert h.mitigations == 0
        assert tracker.queue.dropped_insertions == 0


class TestResetPolicyAblation:
    """Appendix B: eager/lazy resets undercount around the sweep."""

    def _attack(self, geometry, policy):
        tracker = small_mirza(geometry, policy=policy)
        h = harness_for(tracker, geometry)
        target = 1023  # last physical row of region 0
        pad = 2048     # a row in another region (keeps REFs flowing)
        # Phase 1: FTH-1 activations just before the region's first REF.
        for _ in range(FTH - 1):
            h.activate(target)
        while h.refresh.refptr == 0:
            h.activate(pad)
        # Phase 2: FTH-1 more while region 0 is being swept (the target
        # row, at the end of the region, is refreshed last).
        for _ in range(FTH - 1):
            h.activate(target)
        return tracker, h

    def test_eager_reset_filters_everything(self, small_geometry):
        tracker, h = self._attack(small_geometry, ResetPolicy.EAGER)
        # Both batches were filtered: 2*(FTH-1) unmitigated ACTs and
        # the tracker never even saw a candidate.
        assert tracker.rct.escaped_acts == 0
        assert h.bank.oracle.count(1023) == 2 * (FTH - 1)

    def test_safe_reset_catches_second_batch(self, small_geometry):
        tracker, h = self._attack(small_geometry, ResetPolicy.SAFE)
        # The RRC remembers the pre-sweep count: the second batch
        # escapes the filter and participates in MINT.
        assert tracker.rct.escaped_acts > 0

    def test_lazy_reset_undercounts_after_sweep(self, small_geometry):
        tracker = small_mirza(small_geometry, policy=ResetPolicy.LAZY)
        h = harness_for(tracker, small_geometry)
        target = 0  # first physical row of region 0: refreshed first
        pad = 2048
        refs_per_region = tracker.rct.region_size // \
            h.refresh.rows_per_ref
        # Appendix B's lazy-policy attack: the target row is refreshed
        # by the *first* REF of the sweep.  FTH-1 activations between
        # that REF and the end-of-sweep reset, plus FTH-1 after the
        # reset, are all filtered -- 2*(FTH-1) unmitigated ACTs.
        while h.refresh.refptr < 1:
            h.activate(pad)
        for _ in range(FTH - 1):
            h.activate(target)
        while h.refresh.refptr < refs_per_region:
            h.activate(pad)
        for _ in range(FTH - 1):
            h.activate(target)
        assert h.bank.oracle.count(target) == 2 * (FTH - 1)


class TestTrrBroken:
    def test_evasion_pattern_breaks_trr(self, small_geometry):
        trr = TrrTracker(entries=8, refs_per_mitigation=4,
                         mitigation_threshold=32)
        h = SingleBankHarness(trr, acts_per_ref=50)
        h.run(trr_evasion_pattern(8, target_row=500, acts=30_000,
                                  seed=7))
        # The target accrues hundreds of unmitigated ACTs: far beyond
        # what the same pattern achieves against MIRZA.
        assert h.max_unmitigated > 300

    def test_same_pattern_contained_by_mirza(self, small_geometry):
        tracker = small_mirza(small_geometry, seed=2)
        h = harness_for(tracker, small_geometry)
        h.run(trr_evasion_pattern(8, target_row=500, acts=30_000,
                                  seed=7))
        assert h.max_unmitigated <= mirza_bound()


class TestPracDefends:
    def test_focused_hammer_never_crosses_threshold(self, small_geometry):
        trhd = 128
        h = SingleBankHarness(PracTracker(trhd=trhd),
                              acts_per_ref=50)
        h.run(iter([42] * 20_000))
        assert not h.attack_succeeded(trhd)

    def test_rotation_never_crosses_threshold(self, small_geometry):
        trhd = 128
        h = SingleBankHarness(PracTracker(trhd=trhd), acts_per_ref=50)
        rows = list(range(64))
        h.run(iter([rows[i % 64] for i in range(30_000)]))
        assert not h.attack_succeeded(trhd)


class TestMintProactive:
    def test_focused_hammer_caught_within_model_bound(self):
        window = 50
        tracker = MintTracker(window=window, refs_per_mitigation=1,
                              rng=random.Random(9))
        h = SingleBankHarness(tracker, acts_per_ref=window)
        h.run(iter([7] * 50_000))
        assert h.max_unmitigated <= mint_tolerated_trhd(window)


class TestMithrilFeinting:
    def test_feinting_attack_defines_worst_case(self):
        entries = 16
        tracker = MithrilTracker(entries=entries, refs_per_mitigation=1)
        h = SingleBankHarness(tracker, acts_per_ref=20)
        h.run(feinting_attack_stream(entries, 40_000))
        feinting_max = h.max_unmitigated

        focused = MithrilTracker(entries=entries, refs_per_mitigation=1)
        h2 = SingleBankHarness(focused, acts_per_ref=20)
        h2.run(iter([3] * 40_000))
        focused_max = h2.max_unmitigated
        # Feinting sustains strictly more unmitigated ACTs than a
        # naive focused hammer (Table II is built on this).
        assert feinting_max > focused_max
