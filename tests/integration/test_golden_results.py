"""Golden-results regression gate for the simulation kernel.

The kernel is deterministic: one ``(workload, setup, scale, seed)``
tuple must always produce the same :class:`repro.cpu.system.SimResult`.
These values were captured before the hot-path optimization pass
(``__slots__``, chunked traces, tuple-based serve path) and pin the
kernel's observable behaviour: any future "optimization" that changes
scheduling decisions, RNG consumption order, refresh sweeps, or tracker
bookkeeping fails here with a field-level diff rather than silently
shifting every downstream table.

Floats are compared after rounding to 6 decimals (the precision the
report prints at); integers must match exactly.
"""

from __future__ import annotations

import pytest

from repro.params import SimScale
from repro.sim.registry import setup_by_name
from repro.sim.runner import simulate

SCALE = SimScale(2048)
SEED = 0

# Captured at SimScale(2048), seed 0, default SystemConfig.
GOLDEN = {
    ("tc", "baseline"): {
        "total_requests": 4477,
        "total_activations": 2298,
        "row_hit_rate": 0.48671,
        "alerts": [0, 0],
        "rfms": [0, 0],
        "mitigations": 0,
        "victim_rows_refreshed": 0,
        "demand_rows_refreshed": 8388608,
        "max_unmitigated_acts": 2,
        "ipc": [0.099792, 0.095744, 0.090816, 0.099264,
                0.099968, 0.100672, 0.100672, 0.101024],
        "bus_utilization": 0.429792,
    },
    ("tc", "prac-1000"): {
        "total_requests": 4157,
        "total_activations": 2186,
        "row_hit_rate": 0.47414,
        "alerts": [0, 0],
        "rfms": [0, 0],
        "mitigations": 0,
        "victim_rows_refreshed": 0,
        "demand_rows_refreshed": 8388608,
        "max_unmitigated_acts": 2,
        "ipc": [0.088704, 0.09328, 0.085888, 0.095744,
                0.093632, 0.094336, 0.088352, 0.091696],
        "bus_utilization": 0.399072,
    },
    ("tc", "mint-rfm-1000"): {
        "total_requests": 4335,
        "total_activations": 2243,
        "row_hit_rate": 0.482584,
        "alerts": [0, 0],
        "rfms": [1, 5],
        "mitigations": 6,
        "victim_rows_refreshed": 24,
        "demand_rows_refreshed": 8388608,
        "max_unmitigated_acts": 3,
        "ipc": [0.093456, 0.09064, 0.085888, 0.099616,
                0.096624, 0.096624, 0.098912, 0.1012],
        "bus_utilization": 0.41616,
    },
    ("tc", "mirza-1000"): {
        "total_requests": 4477,
        "total_activations": 2298,
        "row_hit_rate": 0.48671,
        "alerts": [0, 0],
        "rfms": [0, 0],
        "mitigations": 0,
        "victim_rows_refreshed": 0,
        "demand_rows_refreshed": 8388608,
        "max_unmitigated_acts": 2,
        "ipc": [0.099792, 0.095744, 0.090816, 0.099264,
                0.099968, 0.100672, 0.100672, 0.101024],
        "bus_utilization": 0.429792,
    },
    ("mcf", "baseline"): {
        "total_requests": 6448,
        "total_activations": 3541,
        "row_hit_rate": 0.450837,
        "alerts": [0, 0],
        "rfms": [0, 0],
        "mitigations": 0,
        "victim_rows_refreshed": 0,
        "demand_rows_refreshed": 8388608,
        "max_unmitigated_acts": 5,
        "ipc": [0.71656, 0.667376, 0.711472, 0.686032,
                0.624976, 0.671616, 0.704688, 0.685184],
        "bus_utilization": 0.619008,
    },
    ("mcf", "prac-1000"): {
        "total_requests": 5384,
        "total_activations": 3394,
        "row_hit_rate": 0.369614,
        "alerts": [0, 0],
        "rfms": [0, 0],
        "mitigations": 0,
        "victim_rows_refreshed": 0,
        "demand_rows_refreshed": 8388608,
        "max_unmitigated_acts": 4,
        "ipc": [0.524064, 0.618192, 0.594448, 0.564768,
                0.519824, 0.599536, 0.58512, 0.55968],
        "bus_utilization": 0.516864,
    },
    ("mcf", "mint-rfm-1000"): {
        "total_requests": 6140,
        "total_activations": 3390,
        "row_hit_rate": 0.447883,
        "alerts": [0, 0],
        "rfms": [18, 22],
        "mitigations": 40,
        "victim_rows_refreshed": 160,
        "demand_rows_refreshed": 8388608,
        "max_unmitigated_acts": 4,
        "ipc": [0.628368, 0.702992, 0.702144, 0.601232,
                0.611408, 0.630912, 0.653808, 0.675856],
        "bus_utilization": 0.58944,
    },
    ("mcf", "mirza-1000"): {
        "total_requests": 6448,
        "total_activations": 3541,
        "row_hit_rate": 0.450837,
        "alerts": [0, 0],
        "rfms": [0, 0],
        "mitigations": 0,
        "victim_rows_refreshed": 0,
        "demand_rows_refreshed": 8388608,
        "max_unmitigated_acts": 5,
        "ipc": [0.71656, 0.667376, 0.711472, 0.686032,
                0.624976, 0.671616, 0.704688, 0.685184],
        "bus_utilization": 0.619008,
    },
}


def _observed(result) -> dict:
    return {
        "total_requests": result.total_requests,
        "total_activations": result.total_activations,
        "row_hit_rate": round(result.row_hit_rate, 6),
        "alerts": result.alerts,
        "rfms": result.rfms,
        "mitigations": result.mitigations,
        "victim_rows_refreshed": result.victim_rows_refreshed,
        "demand_rows_refreshed": result.demand_rows_refreshed,
        "max_unmitigated_acts": result.max_unmitigated_acts,
        "ipc": [round(x, 6) for x in result.ipc],
        "bus_utilization": round(result.bus_utilization, 6),
    }


@pytest.mark.parametrize("workload,setup_name",
                         sorted(GOLDEN),
                         ids=lambda v: v)
def test_golden_sim_result(workload: str, setup_name: str) -> None:
    result = simulate(workload, setup_by_name(setup_name), SCALE,
                      seed=SEED)
    observed = _observed(result)
    expected = GOLDEN[(workload, setup_name)]
    mismatches = {
        field: (observed[field], want)
        for field, want in expected.items()
        if observed[field] != want
    }
    assert not mismatches, (
        f"{workload}/{setup_name} drifted from the golden capture "
        f"(observed, expected): {mismatches}")
