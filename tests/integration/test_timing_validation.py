"""End-to-end timing legality: full runs produce zero violations.

These are the strongest correctness tests of the event-free scheduler:
a whole multi-core window is simulated with the command log attached,
and the validator re-derives every DDR5 constraint over the complete
command stream.
"""

import pytest

from repro.cpu.system import MultiCoreSystem
from repro.mc.validator import TimingValidator
from repro.params import SimScale, SystemConfig
from repro.sim.runner import (
    baseline_setup,
    calibrated_workload,
    mint_rfm_setup,
    mirza_setup,
    prac_setup,
)

SCALE = SimScale(2048)


def run_with_log(setup, workload="tc"):
    config = SystemConfig()
    sys_config = (config.with_prac_timings() if setup.use_prac_timings
                  else config)
    synthetic = calibrated_workload(workload, SCALE, 0, config)
    tracker_factory = None
    if setup.tracker_factory is not None:
        tracker_factory = (
            lambda subch, bank: setup.tracker_factory(0, subch, bank))
    system = MultiCoreSystem(
        sys_config,
        trace_factory=synthetic.trace_factory(),
        tracker_factory=tracker_factory,
        mapping_factory=lambda: setup.make_mapping(sys_config),
        rfm_bat=setup.rfm_bat,
        refs_per_window=SCALE.scaled_refs_per_window(config.timings),
        mlp=synthetic.mlp,
        record_commands=True,
    )
    system.run(SCALE.scaled_trefw(config.timings))
    return system, sys_config


@pytest.mark.parametrize("setup_factory,name", [
    (lambda: baseline_setup(), "baseline"),
    (lambda: prac_setup(1000), "prac"),
    (lambda: mint_rfm_setup(1000), "mint-rfm"),
    (lambda: mirza_setup(1000, SCALE), "mirza"),
])
def test_full_run_has_no_timing_violations(setup_factory, name):
    system, sys_config = run_with_log(setup_factory())
    validator = TimingValidator(sys_config.timings)
    for log in system.command_logs:
        violations = validator.validate(log)
        assert violations == [], f"{name}: {violations[:5]}"


def test_logs_capture_real_traffic():
    system, _ = run_with_log(baseline_setup())
    total_acts = sum(len(log.acts) for log in system.command_logs)
    total_refs = sum(len(log.refreshes) for log in system.command_logs)
    assert total_acts > 100
    assert total_refs > 0


def test_mirza_run_logs_alert_stalls():
    system, _ = run_with_log(mirza_setup(500, SCALE), workload="cc")
    stalls = sum(len(log.stalls) for log in system.command_logs)
    alerts = sum(mc.alerts for mc in system.mcs)
    assert stalls == alerts
