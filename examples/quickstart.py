"""Quickstart: provision MIRZA, attack it, watch it hold the line.

Run:  python examples/quickstart.py

This walks the three things a user of the library does most:

1. provision a MIRZA configuration for a target Rowhammer threshold
   (Table VII of the paper);
2. wire the tracker into the single-bank security harness;
3. drive an adversarial activation stream and check the ground-truth
   oracle: no row may ever exceed the threshold unmitigated.
"""

from __future__ import annotations

import random

from repro import MirzaConfig, MirzaTracker, SystemConfig
from repro.dram.mapping import StridedR2SA
from repro.security.attacks import SingleBankHarness
from repro.workloads.attacks import double_sided_attack_stream


def main() -> None:
    # 1. Provision for a double-sided threshold of 1000 (Table VII).
    config = MirzaConfig.paper_config(trhd=1000)
    print("MIRZA configuration for TRHD=1000")
    print(f"  filtering threshold (FTH): {config.fth}")
    print(f"  MINT window:               {config.mint_window}")
    print(f"  regions per bank:          {config.num_regions}")
    print(f"  queue entries / QTH:       {config.queue_entries} / "
          f"{config.qth}")
    print(f"  SRAM per bank:             "
          f"{config.storage_bytes_per_bank:.0f} bytes")
    print(f"  provably safe TRHD:        {config.safe_trhd()}")
    print()

    # 2. Build the tracker and the verification harness.
    system = SystemConfig()
    mapping = StridedR2SA(system.geometry)
    tracker = MirzaTracker(config, system.geometry, mapping,
                           random.Random(42))
    harness = SingleBankHarness(tracker, system)

    # 3. A double-sided attack: hammer the victim row's two physical
    #    neighbours flat out for two million activations.
    victim_row = 51_200
    acts = 2_000_000
    print(f"Hammering the neighbours of row {victim_row} with "
          f"{acts:,} activations...")
    harness.run(double_sided_attack_stream(victim_row, mapping, acts))

    print(f"  ALERTs raised:        {harness.alerts:,}")
    print(f"  mitigations applied:  {harness.mitigations:,}")
    print(f"  worst unmitigated ACT count on any row: "
          f"{harness.max_unmitigated}")
    print(f"  attack succeeded (exceeded {config.trhd})? "
          f"{harness.attack_succeeded(config.trhd)}")
    assert not harness.attack_succeeded(config.trhd)
    print("\nMIRZA held: every row stayed below the threshold.")


if __name__ == "__main__":
    main()
