"""Interactive-style walkthrough of MIRZA's internals on a tiny bank.

Run:  python examples/rowhammer_playground.py

Steps a miniature MIRZA instance (small FTH/QTH so every phase is
visible within a few hundred activations) through the four phases of
the security analysis (Figure 9), printing the tracker state as a row
climbs from "filtered" to "mitigated":

  Phase A: the region counter absorbs FTH activations;
  Phase B: escaped activations play the MINT lottery;
  Phase C: the selected row waits in MIRZA-Q accruing tardiness;
  Phase D: the ALERT fires, the prologue lands a few last activations,
           and the victim rows are refreshed.
"""

from __future__ import annotations

import random

from repro.core.config import MirzaConfig
from repro.core.mirza import MirzaTracker
from repro.dram.mapping import SequentialR2SA
from repro.params import DramGeometry, SystemConfig
from repro.security.attacks import SingleBankHarness

GEOMETRY = DramGeometry(
    banks_per_subchannel=1, subchannels=1,
    rows_per_bank=4096, rows_per_subarray=1024, rows_per_ref=16)


def main() -> None:
    config = MirzaConfig(trhd=0, fth=24, mint_window=4,
                         num_regions=4, queue_entries=4, qth=6)
    tracker = MirzaTracker(config, GEOMETRY, SequentialR2SA(GEOMETRY),
                           random.Random(7))
    harness = SingleBankHarness(
        tracker, SystemConfig(geometry=GEOMETRY), acts_per_ref=10 ** 9)
    target = 100

    print(f"Tiny MIRZA: FTH={config.fth}, W={config.mint_window}, "
          f"QTH={config.qth}\n")
    phase = "A (filtered by RCT)"
    for act in range(1, 200):
        harness.activate(target)
        region = tracker.rct.region_of(
            tracker.mapping.physical_index(target))
        count = tracker.rct.count(region)
        queued = target in tracker.queue
        if phase.startswith("A") and count > config.fth:
            phase = "B (escapes filter, plays MINT)"
            print(f"act {act:3d}: region counter saturated at "
                  f"{count} -> phase {phase}")
        if phase.startswith("B") and queued:
            phase = "C (buffered in MIRZA-Q)"
            print(f"act {act:3d}: MINT selected the row -> "
                  f"phase {phase}")
        if queued and tracker.queue.tardiness(target) > config.qth:
            print(f"act {act:3d}: tardiness "
                  f"{tracker.queue.tardiness(target)} > QTH -> "
                  f"ALERT requested (phase D)")
        if harness.mitigations > 0:
            print(f"act {act:3d}: ALERT serviced -- victims of row "
                  f"{target} refreshed.")
            break

    oracle = harness.bank.oracle
    print(f"\nUnmitigated activations the row accrued before "
          f"mitigation: {harness.max_unmitigated}")
    print(f"Budget (FTH + MINT escape + QTH + ABO): well above it -- "
          f"the design's slack.")
    print(f"Oracle count after mitigation: {oracle.count(target)}")


if __name__ == "__main__":
    main()
