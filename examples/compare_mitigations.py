"""Compare the slowdown of MIRZA against PRAC+ABO and MINT+RFM.

Run:  python examples/compare_mitigations.py [workload] [time_scale]

Simulates one scaled refresh window of a Table IV workload on the
8-core DDR5 system under each mitigation and reports the performance
and mitigation-resource picture the paper's Figures 3 and 11 are built
from.  Defaults: workload "cc", time scale 512 (a ~62.5 us window).
"""

from __future__ import annotations

import sys

from repro.params import SimScale
from repro.sim.runner import (
    mint_rfm_setup,
    mirza_setup,
    naive_mirza_setup,
    prac_setup,
    run_baseline,
    slowdown_for,
)
from repro.sim.stats import format_table


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "cc"
    scale = SimScale(int(sys.argv[2]) if len(sys.argv) > 2 else 512)
    trhd = 1000

    print(f"Simulating workload {workload!r} over a "
          f"tREFW/{scale.time_scale} window (TRHD={trhd})...\n")
    baseline = run_baseline(workload, scale)
    print(f"Baseline: {baseline.total_activations:,} activations, "
          f"bus utilisation {100 * baseline.bus_utilization:.0f}%, "
          f"row-hit rate {100 * baseline.row_hit_rate:.0f}%\n")

    setups = [
        prac_setup(trhd),
        mint_rfm_setup(trhd),
        naive_mirza_setup(48),
        mirza_setup(trhd, scale),
    ]
    rows = []
    for setup in setups:
        slowdown, result = slowdown_for(workload, setup, scale)
        rows.append([
            setup.name,
            f"{slowdown:.2f}%",
            sum(result.alerts),
            sum(result.rfms),
            result.mitigations,
            f"{result.refresh_power_overhead_pct():.3f}%",
        ])
    print(format_table(
        ["Mitigation", "Slowdown", "ALERTs", "RFMs", "Mitigations",
         "Refresh power ovh"],
        rows))
    print("\nPRAC pays its slowdown in inflated timings, MINT+RFM in "
          "proactive stalls;\nMIRZA filters >99% of activations and "
          "pays almost nothing.")


if __name__ == "__main__":
    main()
