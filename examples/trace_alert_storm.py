"""Trace an ALERT storm: MIRZA vs PRAC under a hammering workload.

Run:  python examples/trace_alert_storm.py [time_scale] [out_dir]

Builds a synthetic "hammer" workload -- almost every miss is a fresh
row activation, with the hot-row overlay cranked up so a few rows soak
most of the traffic -- and simulates it under MIRZA-1000 and PRAC-1000
with structured event tracing on.  Each run writes a Perfetto-loadable
Chrome trace (``mirza.trace.json`` / ``prac.trace.json``); load both
at https://ui.perfetto.dev and compare side by side:

- MIRZA's lanes show bursts of MITIGATE instants during REF windows
  and the occasional ALERT + STALL pair when the queue pressure wins.
- PRAC's channel lane shows the ALERT/STALL cadence of ABO back-off,
  the mechanism behind its Figure 11a slowdown.

PRAC's per-row ALERT threshold (~TRHD) is a full-window quantity, so
-- like MIRZA's FTH -- it is scaled down to the simulated window here;
otherwise no single row could reach it in a tREFW/512 slice and the
ABO lane would stay empty.

Defaults: time scale 512 (~62.5 us window), traces in the working
directory.  See docs/observability.md for the event taxonomy.
"""

from __future__ import annotations

import dataclasses
import pathlib
import sys

from repro import obs
from repro.mitigations.prac import PracTracker, prac_alert_threshold
from repro.params import SimScale
from repro.sim.runner import mirza_setup, prac_setup, simulate
from repro.sim.stats import format_table
from repro.workloads.specs import WorkloadSpec

TRHD = 1000

HAMMER = WorkloadSpec(
    name="hammer", suite="attack",
    l3_mpki=100.0,        # memory-bound: a miss every ~10 instructions
    act_pki=95.0,         # ~no row-buffer locality: each miss an ACT
    bus_util_pct=90.0,
    acts_per_subarray_mean=1600.0,
    acts_per_subarray_std=1400.0,  # huge sigma -> hot-row concentration
)


@dataclasses.dataclass(frozen=True)
class _ScaledPracFactory:
    """PRAC trackers with the ALERT threshold scaled to the window."""

    threshold: int

    def __call__(self, seed: int, subch: int, bank: int) -> PracTracker:
        return PracTracker(TRHD, alert_threshold=self.threshold)


def scaled_prac_setup(scale: SimScale):
    threshold = max(2, scale.scale_threshold(
        prac_alert_threshold(TRHD)))
    return dataclasses.replace(
        prac_setup(TRHD),
        name="prac-scaled",
        tracker_factory=_ScaledPracFactory(threshold))


def trace_run(label: str, setup, scale: SimScale,
              out_dir: pathlib.Path):
    """Simulate HAMMER under ``setup``; write a Perfetto trace."""
    with obs.collecting(metrics=True, trace=True) as col:
        result = simulate(HAMMER, setup, scale)
    path = out_dir / f"{label}.trace.json"
    written = col.write_chrome_trace(str(path))
    events = col.trace_events()
    by_name = {}
    for _, ph, name, _, _ in events:
        if ph in ("I", "B"):
            by_name[name] = by_name.get(name, 0) + 1
    print(f"{label}: {written} trace events -> {path}")
    return result, by_name


def main() -> None:
    scale = SimScale(int(sys.argv[1]) if len(sys.argv) > 1 else 512)
    out_dir = pathlib.Path(sys.argv[2] if len(sys.argv) > 2 else ".")
    out_dir.mkdir(parents=True, exist_ok=True)

    print(f"Hammering workload over a tREFW/{scale.time_scale} window "
          f"(TRHD={TRHD})...\n")
    runs = [
        trace_run("mirza", mirza_setup(TRHD, scale), scale, out_dir),
        trace_run("prac", scaled_prac_setup(scale), scale, out_dir),
    ]
    print()

    names = ["ACT", "REF", "RFM", "DRFM", "ALERT", "STALL", "MITIGATE"]
    rows = []
    for label, (result, by_name) in zip(("mirza", "prac"), runs):
        rows.append([label, result.total_requests]
                    + [by_name.get(name, 0) for name in names])
    print(format_table(["setup", "requests"] + names, rows,
                       title="Event counts (instants + windows)"))
    print("\nLoad the *.trace.json files in https://ui.perfetto.dev "
          "to compare the per-bank lanes side by side.")


if __name__ == "__main__":
    main()
