"""Bring your own trace: run a recorded miss trace under MIRZA.

Run:  python examples/custom_trace.py

Shows the trace-file workflow end to end:

1. record a trace (here: synthesised from the `mix_1` multi-programmed
   mix, but any `<compute_ps> <instructions> <subchannel> <bank> <row>`
   file works -- e.g. converted from a pintool or cache-sim output);
2. load it back and replay it through the full timing simulation,
   once unprotected and once under MIRZA;
3. report the slowdown and mitigation activity for *your* trace.
"""

from __future__ import annotations

import os
import tempfile

from repro.cpu.system import MultiCoreSystem
from repro.cpu.trace import cyclic, take
from repro.params import SimScale, SystemConfig
from repro.sim.runner import baseline_setup, mirza_setup
from repro.workloads.mixed import MixedWorkload
from repro.workloads.tracefile import load_trace, write_trace

SCALE = SimScale(1024)
ENTRIES_PER_CORE = 4000


def record_traces(directory: str, config: SystemConfig) -> list:
    """Synthesise and save one trace file per core (stand-in for a
    real recording)."""
    mix = MixedWorkload.paper_mix("mix_1", config, SCALE)
    paths = []
    for core in range(config.num_cores):
        path = os.path.join(directory, f"core{core}.trace")
        write_trace(take(mix.trace(core), ENTRIES_PER_CORE), path)
        paths.append(path)
    return paths


def replay(paths: list, setup, config: SystemConfig):
    traces = [load_trace(path) for path in paths]

    def factory(core_id):
        return cyclic(traces[core_id])

    sys_config = (config.with_prac_timings() if setup.use_prac_timings
                  else config)
    tracker_factory = None
    if setup.tracker_factory is not None:
        tracker_factory = (
            lambda subch, bank: setup.tracker_factory(0, subch, bank))
    system = MultiCoreSystem(
        sys_config, factory, tracker_factory=tracker_factory,
        mapping_factory=lambda: setup.make_mapping(sys_config),
        rfm_bat=setup.rfm_bat,
        refs_per_window=SCALE.scaled_refs_per_window(config.timings),
        mlp=8)
    return system.run(SCALE.scaled_trefw(config.timings))


def main() -> None:
    config = SystemConfig()
    with tempfile.TemporaryDirectory() as directory:
        paths = record_traces(directory, config)
        size = sum(os.path.getsize(p) for p in paths)
        print(f"recorded {len(paths)} trace files "
              f"({size / 1024:.0f} KiB total)")

        baseline = replay(paths, baseline_setup(), config)
        protected = replay(paths, mirza_setup(1000, SCALE), config)

    print(f"baseline:  {baseline.total_activations:,} ACTs, "
          f"bus util {100 * baseline.bus_utilization:.0f}%")
    print(f"MIRZA:     slowdown "
          f"{protected.slowdown_pct(baseline):.2f}%, "
          f"{sum(protected.alerts)} ALERTs, "
          f"{protected.mitigations} mitigations")


if __name__ == "__main__":
    main()
