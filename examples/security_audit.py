"""Audit a set of Rowhammer trackers against the attack library.

Run:  python examples/security_audit.py

Drives four adversarial activation patterns against five trackers in
the single-bank harness and reports the ground-truth oracle's worst
per-row unmitigated count for each pairing.  This reproduces the
qualitative security story of the paper:

- TRR breaks under an eviction pattern (Section X);
- Mithril and MINT hold, at very different storage costs;
- PRAC holds by construction;
- MIRZA holds at a fraction of everyone's overheads.
"""

from __future__ import annotations

import random

from repro import MirzaConfig, MirzaTracker, SystemConfig
from repro.dram.mapping import StridedR2SA
from repro.mitigations.mint_rfm import MintTracker
from repro.mitigations.mithril import MithrilTracker
from repro.mitigations.prac import PracTracker
from repro.mitigations.trr import TrrTracker
from repro.security.attacks import SingleBankHarness
from repro.sim.stats import format_table
from repro.workloads.attacks import (
    double_sided_attack_stream,
    feinting_attack_stream,
    trr_evasion_pattern,
)

TRHD = 1000
ACTS = 150_000


def build_trackers(system: SystemConfig):
    geometry = system.geometry
    mapping = StridedR2SA(geometry)

    def mirza():
        return MirzaTracker(MirzaConfig.paper_config(TRHD), geometry,
                            mapping, random.Random(1)), mapping

    def trr():
        return TrrTracker(entries=28, refs_per_mitigation=4), None

    def mithril():
        return MithrilTracker(entries=512, refs_per_mitigation=1), None

    def mint():
        return MintTracker(window=48, refs_per_mitigation=1,
                           rng=random.Random(2)), None

    def prac():
        return PracTracker(trhd=TRHD), None

    return {"MIRZA": mirza, "TRR": trr, "Mithril-512": mithril,
            "MINT": mint, "PRAC": prac}


def attacks(system: SystemConfig, mapping):
    victim = 4096 + 7
    return {
        "focused hammer": iter([12_345] * ACTS),
        "double-sided": double_sided_attack_stream(
            victim, mapping or StridedR2SA(system.geometry), ACTS),
        "feinting (36 rows)": feinting_attack_stream(32, ACTS),
        "TRR evasion": trr_evasion_pattern(28, target_row=777, seed=7,
                                           acts=ACTS),
    }


def main() -> None:
    system = SystemConfig()
    rows = []
    for name, build in build_trackers(system).items():
        for attack_name in attacks(system, None):
            tracker, mapping = build()
            harness = SingleBankHarness(tracker, system,
                                        mapping=mapping)
            stream = attacks(system, mapping)[attack_name]
            harness.run(stream)
            # Single-sided patterns are judged against TRHS = 2xTRHD
            # (Section VI-C); only the double-sided attack hammers at
            # the double-sided threshold.
            threshold = TRHD if attack_name == "double-sided" \
                else 2 * TRHD
            broken = harness.attack_succeeded(threshold)
            rows.append([
                name, attack_name, harness.max_unmitigated,
                threshold, harness.alerts, harness.mitigations,
                "BROKEN" if broken else "held",
            ])
    print(format_table(
        ["Tracker", "Attack", "max unmitigated ACTs", "bound",
         "ALERTs", "mitigations", "verdict"],
        rows, title=f"Security audit: {ACTS:,} adversarial "
                    f"activations per cell (TRHD={TRHD}, "
                    f"TRHS={2 * TRHD})"))


if __name__ == "__main__":
    main()
