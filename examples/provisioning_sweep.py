"""Design-space exploration: provision MIRZA across future thresholds.

Run:  python examples/provisioning_sweep.py

Uses the security model of Section VI to derive safe (FTH, MINT-W,
regions) configurations as the Rowhammer threshold decays from today's
4.8K to a hypothetical 250, and compares each point's SRAM cost with
what PRAC and Mithril would need -- the provisioning exercise a DRAM
vendor adopting MIRZA would run.
"""

from __future__ import annotations

from repro.core.config import MirzaConfig
from repro.security.area import (
    AreaModel,
    mithril_storage_bytes_per_bank,
)
from repro.sim.stats import format_table


def main() -> None:
    model = AreaModel()
    rows = []
    for trhd in (4800, 2000, 1000, 500, 250):
        config = MirzaConfig.solve(trhd)
        ratio = model.prac_to_mirza_ratio(trhd, config.num_regions,
                                          config.fth)
        rows.append([
            trhd,
            config.fth,
            config.mint_window,
            config.num_regions,
            f"{config.storage_bytes_per_bank:.0f} B",
            f"{mithril_storage_bytes_per_bank():,.0f} B",
            f"{ratio:.1f}x",
            "yes" if config.is_safe() else "NO",
        ])
    print(format_table(
        ["TRHD", "FTH", "MINT-W", "Regions", "MIRZA SRAM/bank",
         "Mithril SRAM/bank", "PRAC area ratio", "safe"],
        rows, title="MIRZA provisioning across thresholds"))
    print("\nEvery configuration is checked against the phase A-D "
          "safe-TRH bound;\nstorage stays in the low hundreds of "
          "bytes even at TRHD=250.")


if __name__ == "__main__":
    main()
