"""Legacy setup shim: lets ``pip install -e . --no-use-pep517`` work on
environments without the ``wheel`` package (metadata lives in
pyproject.toml)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "MIRZA: Efficiently Mitigating Rowhammer with Randomization and "
        "ALERT (HPCA 2026) - full reproduction"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
